//! Instruction semantics.

use std::fmt;

use halide_ir::{Env, EvalError};
use lanes::{ElemType, Vector};

use crate::ops::{Op, ScalarOperand};
use crate::reg::{Value, VecReg};

/// Evaluation context for HVX expressions: the tile origin and widths.
#[derive(Debug, Clone, Copy)]
pub struct ExecCtx<'a> {
    /// Input buffers.
    pub env: &'a Env,
    /// Loop `x` coordinate of lane 0.
    pub x0: i64,
    /// Loop `y` coordinate.
    pub y0: i64,
    /// Halide-level vectorization width in lanes: every load produces this
    /// many lanes.
    pub lanes: usize,
    /// Byte width of one machine register; values larger than this are
    /// split into natural-order pairs at source boundaries.
    pub vec_bytes: usize,
}

/// Failure executing an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Wrong number of arguments.
    Arity {
        /// Offending op (rendered).
        op: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// Operand shapes (vector vs. pair, byte lengths) do not fit the op.
    Shape {
        /// Offending op (rendered).
        op: String,
        /// What was wrong.
        detail: String,
    },
    /// A load failed (missing buffer or element-type mismatch).
    Buffer(EvalError),
    /// An immediate or type parameter is invalid for the op.
    BadOperand {
        /// Offending op (rendered).
        op: String,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Arity { op, expected, got } => {
                write!(f, "`{op}` expects {expected} arguments, got {got}")
            }
            ExecError::Shape { op, detail } => write!(f, "`{op}` operand shape error: {detail}"),
            ExecError::Buffer(e) => write!(f, "load failed: {e}"),
            ExecError::BadOperand { op, detail } => write!(f, "`{op}`: {detail}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> ExecError {
        ExecError::Buffer(e)
    }
}

fn shape_err(op: &Op, detail: impl Into<String>) -> ExecError {
    ExecError::Shape { op: op.to_string(), detail: detail.into() }
}

fn bad_operand(op: &Op, detail: impl Into<String>) -> ExecError {
    ExecError::BadOperand { op: op.to_string(), detail: detail.into() }
}

/// Resolve a scalar operand (immediate or runtime scalar load).
pub fn scalar_value(s: &ScalarOperand, ctx: &ExecCtx<'_>) -> Result<i64, ExecError> {
    match s {
        ScalarOperand::Imm(v) => Ok(*v),
        ScalarOperand::Load { buffer, x, dy } => {
            let buf = ctx
                .env
                .get(buffer)
                .ok_or_else(|| EvalError::UnknownBuffer(buffer.clone()))?;
            Ok(buf.get(i64::from(*x), ctx.y0 + i64::from(*dy)))
        }
    }
}

/// Resolve and validate a multiply scalar. Scalar registers exist in
/// signed and unsigned element-wide variants (`Rt.b` / `Rt.ub`, ...), so a
/// value is valid when it fits *either* range; runtime scalars must come
/// from a buffer no wider than the lane type so validity is
/// value-independent.
fn mul_scalar(op: &Op, elem: ElemType, s: &ScalarOperand, ctx: &ExecCtx<'_>) -> Result<i64, ExecError> {
    if let ScalarOperand::Load { buffer, .. } = s {
        let buf = ctx
            .env
            .get(buffer)
            .ok_or_else(|| EvalError::UnknownBuffer(buffer.clone()))?;
        if buf.elem().bits() > elem.bits() {
            return Err(bad_operand(
                op,
                format!("runtime scalar of type {} too wide for {elem} lanes", buf.elem()),
            ));
        }
    }
    let v = scalar_value(s, ctx)?;
    if v < elem.as_signed().min_value() || v > elem.max_value() {
        return Err(bad_operand(op, format!("scalar {v} out of range for {elem} lanes")));
    }
    Ok(v)
}

/// Split `bytes` into a value: one register if it fits `vec_bytes`, else a
/// natural-order pair.
fn value_from_bytes(bytes: Vec<u8>, vec_bytes: usize) -> Value {
    if bytes.len() <= vec_bytes {
        Value::Vec(VecReg::new(bytes))
    } else {
        let half = bytes.len() / 2;
        Value::Pair(VecReg::new(bytes[..half].to_vec()), VecReg::new(bytes[half..].to_vec()))
    }
}

/// Deinterleave natural-order wide lanes into a register pair (even lanes
/// to `lo`), the layout widening instructions produce.
fn deinterleave(wide: &Vector) -> Value {
    let n = wide.lanes();
    let lo = Vector::from_fn(wide.ty(), n / 2, |i| wide.get(2 * i));
    let hi = Vector::from_fn(wide.ty(), n / 2, |i| wide.get(2 * i + 1));
    Value::Pair(VecReg::from_lanes(&lo), VecReg::from_lanes(&hi))
}

fn map_reg(r: &VecReg, elem: ElemType, f: &mut impl FnMut(i64) -> i64) -> VecReg {
    VecReg::from_lanes(&r.typed_lanes(elem).map(f))
}

fn elementwise1(
    op: &Op,
    v: &Value,
    elem: ElemType,
    mut f: impl FnMut(i64) -> i64,
) -> Result<Value, ExecError> {
    check_elem_len(op, v, elem)?;
    Ok(match v {
        Value::Vec(r) => Value::Vec(map_reg(r, elem, &mut f)),
        Value::Pair(lo, hi) => Value::Pair(map_reg(lo, elem, &mut f), map_reg(hi, elem, &mut f)),
    })
}

fn check_elem_len(op: &Op, v: &Value, elem: ElemType) -> Result<(), ExecError> {
    let ok = match v {
        Value::Vec(r) => r.len() % elem.bytes() == 0,
        Value::Pair(lo, hi) => lo.len() % elem.bytes() == 0 && lo.len() == hi.len(),
    };
    if ok {
        Ok(())
    } else {
        Err(shape_err(op, format!("value of {} bytes not divisible into {elem} lanes", v.len())))
    }
}

fn elementwise2(
    op: &Op,
    a: &Value,
    b: &Value,
    elem: ElemType,
    mut f: impl FnMut(i64, i64) -> i64,
) -> Result<Value, ExecError> {
    check_elem_len(op, a, elem)?;
    check_elem_len(op, b, elem)?;
    match (a, b) {
        (Value::Vec(ra), Value::Vec(rb)) if ra.len() == rb.len() => {
            let la = ra.typed_lanes(elem);
            let lb = rb.typed_lanes(elem);
            Ok(Value::Vec(VecReg::from_lanes(&la.zip(&lb, &mut f))))
        }
        (Value::Pair(alo, ahi), Value::Pair(blo, bhi))
            if alo.len() == blo.len() && ahi.len() == bhi.len() =>
        {
            let lo = alo.typed_lanes(elem).zip(&blo.typed_lanes(elem), &mut f);
            let hi = ahi.typed_lanes(elem).zip(&bhi.typed_lanes(elem), f);
            Ok(Value::Pair(VecReg::from_lanes(&lo), VecReg::from_lanes(&hi)))
        }
        _ => Err(shape_err(op, "operands must have identical shapes and lengths")),
    }
}

fn expect_vec<'v>(op: &Op, v: &'v Value) -> Result<&'v VecReg, ExecError> {
    v.as_vec().ok_or_else(|| shape_err(op, "expected a single register, got a pair"))
}

fn expect_pair<'v>(op: &Op, v: &'v Value) -> Result<(&'v VecReg, &'v VecReg), ExecError> {
    v.as_pair().ok_or_else(|| shape_err(op, "expected a register pair, got a single register"))
}

fn expect_same_len(op: &Op, a: &VecReg, b: &VecReg) -> Result<(), ExecError> {
    if a.len() == b.len() {
        Ok(())
    } else {
        Err(shape_err(op, format!("register lengths differ: {} vs {}", a.len(), b.len())))
    }
}

fn widened(op: &Op, elem: ElemType) -> Result<ElemType, ExecError> {
    elem.widened().ok_or_else(|| bad_operand(op, format!("{elem} has no widened type")))
}

/// Widening two-source multiply-accumulate core shared by `vmpa`-style ops:
/// computes `a*w0 + b*w1` in natural order, then deinterleaves, optionally
/// adding an accumulator pair.
#[allow(clippy::too_many_arguments)]
fn mpa_core(
    op: &Op,
    acc: Option<&Value>,
    a: &VecReg,
    b: &VecReg,
    elem: ElemType,
    w0: i64,
    w1: i64,
) -> Result<Value, ExecError> {
    expect_same_len(op, a, b)?;
    let wide_ty = widened(op, elem)?;
    let la = a.typed_lanes(elem);
    let lb = b.typed_lanes(elem);
    let wide = Vector::from_fn(wide_ty, la.lanes(), |i| la.get(i) * w0 + lb.get(i) * w1);
    accumulate_deint(op, acc, &wide, wide_ty)
}

/// Deinterleave `wide` and add it to an optional accumulator pair.
fn accumulate_deint(
    op: &Op,
    acc: Option<&Value>,
    wide: &Vector,
    wide_ty: ElemType,
) -> Result<Value, ExecError> {
    let fresh = deinterleave(wide);
    match acc {
        None => Ok(fresh),
        Some(acc) => {
            let (alo, ahi) = expect_pair(op, acc)?;
            let (flo, fhi) = fresh.as_pair().expect("deinterleave returns a pair");
            expect_same_len(op, alo, flo)?;
            expect_same_len(op, ahi, fhi)?;
            let lo = alo.typed_lanes(wide_ty).zip(&flo.typed_lanes(wide_ty), |x, y| x + y);
            let hi = ahi.typed_lanes(wide_ty).zip(&fhi.typed_lanes(wide_ty), |x, y| x + y);
            Ok(Value::Pair(VecReg::from_lanes(&lo), VecReg::from_lanes(&hi)))
        }
    }
}

/// Interleaving narrow shared by `vpack`/`vshuffe`/`vasr`-narrow:
/// `out[2i] = f(even_src[i])`, `out[2i+1] = f(odd_src[i])`.
fn narrow_interleave(
    op: &Op,
    odd_src: &VecReg,
    even_src: &VecReg,
    elem: ElemType,
    out: ElemType,
    mut f: impl FnMut(i64) -> i64,
) -> Result<Value, ExecError> {
    expect_same_len(op, odd_src, even_src)?;
    if out.bits() * 2 != elem.bits() {
        return Err(bad_operand(op, format!("{out} is not the half-width type of {elem}")));
    }
    let le = even_src.typed_lanes(elem);
    let lo = odd_src.typed_lanes(elem);
    let n = le.lanes();
    let outv = Vector::from_fn(out, 2 * n, |i| {
        if i % 2 == 0 {
            f(le.get(i / 2))
        } else {
            f(lo.get(i / 2))
        }
    });
    Ok(Value::Vec(VecReg::from_lanes(&outv)))
}

/// Execute one operation.
///
/// # Errors
///
/// Returns [`ExecError`] on arity, shape or operand violations, or if a
/// load references a missing/ill-typed buffer.
pub fn eval_op(op: &Op, args: &[Value], ctx: &ExecCtx<'_>) -> Result<Value, ExecError> {
    if args.len() != op.arity() {
        return Err(ExecError::Arity {
            op: op.to_string(),
            expected: op.arity(),
            got: args.len(),
        });
    }
    match op {
        Op::Vmem { buffer, dx, dy, elem } => {
            let buf = ctx
                .env
                .get(buffer)
                .ok_or_else(|| EvalError::UnknownBuffer(buffer.clone()))?;
            if buf.elem() != *elem {
                return Err(EvalError::BufferTypeMismatch {
                    buffer: buffer.clone(),
                    expected: *elem,
                    actual: buf.elem(),
                }
                .into());
            }
            let v = Vector::from_fn(*elem, ctx.lanes, |i| {
                buf.get(ctx.x0 + i64::from(*dx) + i as i64, ctx.y0 + i64::from(*dy))
            });
            Ok(value_from_bytes(v.to_le_bytes(), ctx.vec_bytes))
        }
        Op::Vsplat { value, elem } => {
            let s = scalar_value(value, ctx)?;
            let v = Vector::splat(*elem, s, ctx.lanes);
            Ok(value_from_bytes(v.to_le_bytes(), ctx.vec_bytes))
        }

        Op::Vadd { elem, sat } => {
            let f: fn(ElemType, i64, i64) -> i64 =
                if *sat { lanes::add_sat } else { lanes::add_wrap };
            elementwise2(op, &args[0], &args[1], *elem, |a, b| f(*elem, a, b))
        }
        Op::Vsub { elem, sat } => {
            let f: fn(ElemType, i64, i64) -> i64 =
                if *sat { lanes::sub_sat } else { lanes::sub_wrap };
            elementwise2(op, &args[0], &args[1], *elem, |a, b| f(*elem, a, b))
        }
        Op::Vavg { elem, round } => {
            elementwise2(op, &args[0], &args[1], *elem, |a, b| lanes::avg(*elem, a, b, *round))
        }
        Op::Vnavg { elem } => {
            elementwise2(op, &args[0], &args[1], *elem, |a, b| lanes::navg(*elem, a, b, false))
        }
        Op::Vabsdiff { elem } => {
            elementwise2(op, &args[0], &args[1], *elem, |a, b| lanes::absd(*elem, a, b))
        }
        Op::Vmax { elem } => {
            elementwise2(op, &args[0], &args[1], *elem, |a, b| lanes::max(*elem, a, b))
        }
        Op::Vmin { elem } => {
            elementwise2(op, &args[0], &args[1], *elem, |a, b| lanes::min(*elem, a, b))
        }
        Op::Vand => elementwise2(op, &args[0], &args[1], ElemType::U8, |a, b| a & b),
        Op::Vor => elementwise2(op, &args[0], &args[1], ElemType::U8, |a, b| a | b),
        Op::Vxor => elementwise2(op, &args[0], &args[1], ElemType::U8, |a, b| a ^ b),
        Op::Vnot => elementwise1(op, &args[0], ElemType::U8, |a| !a),

        Op::Vasl { elem, shift } => {
            check_shift(op, *elem, *shift)?;
            elementwise1(op, &args[0], *elem, |a| lanes::shl(*elem, a, *shift))
        }
        Op::Vasr { elem, shift } => {
            check_shift(op, *elem, *shift)?;
            elementwise1(op, &args[0], *elem, |a| lanes::asr(*elem, a, *shift))
        }
        Op::Vlsr { elem, shift } => {
            check_shift(op, *elem, *shift)?;
            elementwise1(op, &args[0], *elem, |a| lanes::lsr(*elem, a, *shift))
        }
        Op::VasrNarrow { elem, shift, round, sat, out } => {
            check_shift(op, *elem, *shift)?;
            let (a, b) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            let (sh, rnd, st, o, e) = (*shift, *round, *sat, *out, *elem);
            narrow_interleave(op, a, b, e, o, move |x| {
                let shifted = if rnd { lanes::asr_rnd(e, x, sh) } else { lanes::asr(e, x, sh) };
                if st {
                    o.saturate(shifted)
                } else {
                    o.wrap(shifted)
                }
            })
        }

        Op::Vmpy { elem } => {
            let (a, b) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            expect_same_len(op, a, b)?;
            let wide_ty = widened(op, *elem)?;
            let la = a.typed_lanes(*elem);
            let lb = b.typed_lanes(*elem);
            let wide = Vector::from_fn(wide_ty, la.lanes(), |i| la.get(i) * lb.get(i));
            Ok(deinterleave(&wide))
        }
        Op::VmpyScalar { elem, scalar } => {
            let a = expect_vec(op, &args[0])?;
            let s = mul_scalar(op, *elem, scalar, ctx)?;
            let wide_ty = widened(op, *elem)?;
            let la = a.typed_lanes(*elem);
            let wide = Vector::from_fn(wide_ty, la.lanes(), |i| la.get(i) * s);
            Ok(deinterleave(&wide))
        }
        Op::VmpyAcc { elem, scalar } => {
            let x = expect_vec(op, &args[1])?;
            let s = mul_scalar(op, *elem, scalar, ctx)?;
            let wide_ty = widened(op, *elem)?;
            let lx = x.typed_lanes(*elem);
            let wide = Vector::from_fn(wide_ty, lx.lanes(), |i| lx.get(i) * s);
            accumulate_deint(op, Some(&args[0]), &wide, wide_ty)
        }
        Op::Vmpyi { elem, scalar } => {
            let s = mul_scalar(op, *elem, scalar, ctx)?;
            elementwise1(op, &args[0], *elem, |a| lanes::mul_wrap(*elem, a, s))
        }
        Op::VmpyiAcc { elem, scalar } => {
            let s = mul_scalar(op, *elem, scalar, ctx)?;
            elementwise2(op, &args[0], &args[1], *elem, |acc, x| {
                elem.wrap(acc + lanes::mul_wrap(*elem, x, s))
            })
        }
        Op::Vmpyie => mpy_wordhalf(op, &args[0], &args[1], false),
        Op::Vmpyio => mpy_wordhalf(op, &args[0], &args[1], true),
        Op::Vmpa { elem, w0, w1 } => {
            let (a, b) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            mpa_core(op, None, a, b, *elem, *w0, *w1)
        }
        Op::VmpaAcc { elem, w0, w1 } => {
            let (a, b) = (expect_vec(op, &args[1])?, expect_vec(op, &args[2])?);
            mpa_core(op, Some(&args[0]), a, b, *elem, *w0, *w1)
        }
        Op::Vtmpy { elem, w0, w1 } => {
            let (a, b) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            tmpy_core(op, None, a, b, *elem, *w0, *w1)
        }
        Op::VtmpyAcc { elem, w0, w1 } => {
            let (a, b) = (expect_vec(op, &args[1])?, expect_vec(op, &args[2])?);
            tmpy_core(op, Some(&args[0]), a, b, *elem, *w0, *w1)
        }
        Op::Vdmpy { elem, w0, w1 } => dmpy_core(op, None, &args[0], *elem, *w0, *w1),
        Op::VdmpyAcc { elem, w0, w1 } => {
            dmpy_core(op, Some(&args[0]), &args[1], *elem, *w0, *w1)
        }
        Op::Vrmpy { elem, w } => rmpy_core(op, None, &args[0], *elem, w),
        Op::VrmpyAcc { elem, w } => rmpy_core(op, Some(&args[0]), &args[1], *elem, w),

        Op::Vpack { elem, sat, out } => {
            let (a, b) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            let (st, o) = (*sat, *out);
            narrow_interleave(op, a, b, *elem, o, move |x| {
                if st {
                    o.saturate(x)
                } else {
                    o.wrap(x)
                }
            })
        }

        Op::Vcombine => {
            let (hi, lo) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            expect_same_len(op, hi, lo)?;
            Ok(Value::Pair(lo.clone(), hi.clone()))
        }
        Op::Lo => Ok(Value::Vec(expect_pair(op, &args[0])?.0.clone())),
        Op::Hi => Ok(Value::Vec(expect_pair(op, &args[0])?.1.clone())),
        Op::VshuffPair { elem } => {
            let (lo, hi) = expect_pair(op, &args[0])?;
            expect_same_len(op, lo, hi)?;
            let ll = lo.typed_lanes(*elem);
            let lh = hi.typed_lanes(*elem);
            let n = ll.lanes();
            let stream = Vector::from_fn(*elem, 2 * n, |i| {
                if i % 2 == 0 {
                    ll.get(i / 2)
                } else {
                    lh.get(i / 2)
                }
            });
            Ok(Value::Pair(
                VecReg::from_lanes(&stream.slice(0, n)),
                VecReg::from_lanes(&stream.slice(n, n)),
            ))
        }
        Op::VdealPair { elem } => {
            let (lo, hi) = expect_pair(op, &args[0])?;
            expect_same_len(op, lo, hi)?;
            let nat = lo.typed_lanes(*elem).concat(&hi.typed_lanes(*elem));
            Ok(deinterleave(&nat))
        }
        Op::Valign { bytes } => {
            let (a, b) = (expect_vec(op, &args[0])?, expect_vec(op, &args[1])?);
            expect_same_len(op, a, b)?;
            let n = *bytes as usize;
            if n > a.len() {
                return Err(bad_operand(op, format!("align offset {n} exceeds register size")));
            }
            let concat: Vec<u8> = b.as_bytes().iter().chain(a.as_bytes()).copied().collect();
            Ok(Value::Vec(VecReg::new(concat[n..n + a.len()].to_vec())))
        }
        Op::Vror { bytes } => {
            let a = expect_vec(op, &args[0])?;
            Ok(Value::Vec(a.rotate_bytes(*bytes as usize)))
        }
        Op::Vzxt { elem } => {
            let a = expect_vec(op, &args[0])?;
            let src = elem.as_unsigned();
            let wide_ty = widened(op, src)?;
            let la = a.typed_lanes(src);
            let wide = Vector::from_fn(wide_ty, la.lanes(), |i| la.get(i));
            Ok(deinterleave(&wide))
        }
        Op::Vsxt { elem } => {
            let a = expect_vec(op, &args[0])?;
            let src = elem.as_signed();
            let wide_ty = widened(op, src)?;
            let la = a.typed_lanes(src);
            let wide = Vector::from_fn(wide_ty, la.lanes(), |i| la.get(i));
            Ok(deinterleave(&wide))
        }
    }
}

fn check_shift(op: &Op, elem: ElemType, shift: u32) -> Result<(), ExecError> {
    if shift < elem.bits() {
        Ok(())
    } else {
        Err(bad_operand(op, format!("shift {shift} out of range for {elem}")))
    }
}

fn mpy_wordhalf(op: &Op, w: &Value, h: &Value, odd: bool) -> Result<Value, ExecError> {
    let (w, h) = (expect_vec(op, w)?, expect_vec(op, h)?);
    expect_same_len(op, w, h)?;
    let lw = w.typed_lanes(ElemType::I32);
    let lh = if odd {
        h.typed_lanes(ElemType::I16)
    } else {
        h.typed_lanes(ElemType::U16)
    };
    let off = usize::from(odd);
    let out = Vector::from_fn(ElemType::I32, lw.lanes(), |i| lw.get(i) * lh.get(2 * i + off));
    Ok(Value::Vec(VecReg::from_lanes(&out)))
}

fn tmpy_core(
    op: &Op,
    acc: Option<&Value>,
    a: &VecReg,
    b: &VecReg,
    elem: ElemType,
    w0: i64,
    w1: i64,
) -> Result<Value, ExecError> {
    expect_same_len(op, a, b)?;
    let wide_ty = widened(op, elem)?;
    let c = a.typed_lanes(elem).concat(&b.typed_lanes(elem));
    let n = a.lanes(elem);
    let wide =
        Vector::from_fn(wide_ty, n, |i| c.get(i) * w0 + c.get(i + 1) * w1 + c.get(i + 2));
    accumulate_deint(op, acc, &wide, wide_ty)
}

fn dmpy_core(
    op: &Op,
    acc: Option<&Value>,
    a: &Value,
    elem: ElemType,
    w0: i64,
    w1: i64,
) -> Result<Value, ExecError> {
    let a = expect_vec(op, a)?;
    let wide_ty = widened(op, elem)?;
    let la = a.typed_lanes(elem);
    let out =
        Vector::from_fn(wide_ty, la.lanes() / 2, |i| la.get(2 * i) * w0 + la.get(2 * i + 1) * w1);
    match acc {
        None => Ok(Value::Vec(VecReg::from_lanes(&out))),
        Some(acc) => {
            let acc = expect_vec(op, acc)?;
            if acc.len() != out.lanes() * wide_ty.bytes() {
                return Err(shape_err(op, "accumulator length mismatch"));
            }
            let sum = acc.typed_lanes(wide_ty).zip(&out, |x, y| x + y);
            Ok(Value::Vec(VecReg::from_lanes(&sum)))
        }
    }
}

fn rmpy_core(
    op: &Op,
    acc: Option<&Value>,
    a: &Value,
    elem: ElemType,
    w: &[i64; 4],
) -> Result<Value, ExecError> {
    let a = expect_vec(op, a)?;
    if elem.bits() != 8 {
        return Err(bad_operand(op, "vrmpy requires byte elements"));
    }
    let wide2 = ElemType::I32; // 4-way byte reduce accumulates in words
    let la = a.typed_lanes(elem);
    let out = Vector::from_fn(wide2, la.lanes() / 4, |i| {
        (0..4).map(|k| la.get(4 * i + k) * w[k]).sum()
    });
    match acc {
        None => Ok(Value::Vec(VecReg::from_lanes(&out))),
        Some(acc) => {
            let acc = expect_vec(op, acc)?;
            if acc.len() != out.lanes() * wide2.bytes() {
                return Err(shape_err(op, "accumulator length mismatch"));
            }
            let sum = acc.typed_lanes(wide2).zip(&out, |x, y| x + y);
            Ok(Value::Vec(VecReg::from_lanes(&sum)))
        }
    }
}
