//! A byte-accurate functional model of an HVX-style vector ISA, plus a
//! cycle-approximate VLIW simulator.
//!
//! This crate is the reproduction's substitute for the Hexagon HVX target
//! and Qualcomm's Hexagon Simulator (see DESIGN.md). It models the parts of
//! HVX that the Rake paper's instruction-selection problem is about:
//!
//! * **1024-bit vector registers and register pairs** holding raw bytes;
//!   instructions interpret the bytes by element type, so layout phenomena
//!   are real: widening instructions ([`Op::Vmpy`], [`Op::Vzxt`], ...)
//!   produce *deinterleaved* pairs (even lanes in the low register), and
//!   narrowing instructions ([`Op::VasrNarrow`], [`Op::Vpack`], ...)
//!   re-interleave — exactly the implicit data movement §5.1 of the paper
//!   revolves around.
//! * **The instruction families the paper names**: widening multiply-adds
//!   (`vmpy`, `vmpa`, `vmpa.acc`), sliding-window reductions (`vtmpy`,
//!   `vdmpy`, `vrmpy`), saturating packs (`vpack`, `vsat`), fused
//!   round-shift-saturate narrows (`vasr-rnd-sat`), permutes (`vshuff`,
//!   `vdeal`, `valign`, `vror`, `vcombine`) and the scalar-broadcast forms.
//! * **A per-resource cost model** (§6 of the paper: count instructions per
//!   hardware resource — multiply / shift / permute / ALU / load — and take
//!   the maximum), and
//! * **a VLIW packet scheduler** that issues the flattened instruction DAG
//!   under per-packet resource slots to produce cycle counts, our stand-in
//!   for the Hexagon simulator's reported cycles.
//!
//! Registers have no fixed global width here: a [`VecReg`] holds any number
//! of bytes, so the same ISA model runs at full 128-byte width for
//! benchmarks and at narrow widths for fast synthesis-time verification.
//!
//! # Example
//!
//! ```
//! use rake_hvx::{Op, HvxExpr, ScalarOperand};
//! use halide_ir::{Buffer2D, Env};
//! use lanes::ElemType;
//!
//! // vtmpy: 3-tap sliding window [1, 2, 1] over u8, widening to u16.
//! let e = HvxExpr::op(
//!     Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
//!     vec![
//!         HvxExpr::vmem("in", ElemType::U8, -1, 0),
//!         HvxExpr::vmem("in", ElemType::U8, -1 + 16, 0), // next vector
//!     ],
//! );
//! let mut env = Env::new();
//! env.insert(Buffer2D::from_fn("in", ElemType::U8, 64, 1, |x, _| x as i64));
//! let out = e.eval(&env, 8, 0, 16)?; // 16-lane vectors for the example
//! // Natural-order lane 0 of the deinterleaved pair is lo lane 0:
//! // in(7) + 2*in(8) + in(9) = 7 + 16 + 9 = 32.
//! let lanes = out.typed_lanes(lanes::ElemType::U16);
//! assert_eq!(lanes.get(0), 32);
//! # Ok::<(), rake_hvx::ExecError>(())
//! ```

mod cost;
mod exec;
#[cfg(test)]
mod exec_tests;
mod expr;
mod ops;
mod program;
pub mod sexpr;
#[cfg(test)]
mod schedule_tests;
#[cfg(test)]
mod proptests;
mod reg;

pub use cost::{CostModel, ResourceCounts};
pub use exec::{eval_op, scalar_value, ExecCtx, ExecError};
pub use expr::HvxExpr;
pub use ops::{Op, Resource, ScalarOperand};
pub use program::{Instr, Program, Schedule, SlotBudget};
pub use reg::{Value, VecReg};
