//! The instruction set: operations, operands and static metadata.

use std::fmt;

use lanes::ElemType;

/// The hardware resource class an instruction executes on. The paper's
/// cost model (§6) counts instructions per resource and takes the maximum,
/// biasing selection toward implementations that spread work across
/// resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Vector load/store unit.
    Load,
    /// Multiplier array.
    Mpy,
    /// Shifter.
    Shift,
    /// Permute network.
    Permute,
    /// Plain vector ALU.
    Alu,
}

impl Resource {
    /// All resource classes.
    pub const ALL: [Resource; 5] =
        [Resource::Load, Resource::Mpy, Resource::Shift, Resource::Permute, Resource::Alu];
}

/// A scalar operand of a vector-scalar instruction: either an immediate or
/// a runtime scalar loaded from a buffer (absolute `x` column, `dy`-relative
/// row), the form reduction loops produce after unrolling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarOperand {
    /// Compile-time immediate.
    Imm(i64),
    /// Scalar load `buffer(x, y0 + dy)` broadcast at runtime.
    Load {
        /// Buffer name.
        buffer: String,
        /// Absolute column.
        x: i32,
        /// Row offset relative to the tile's `y`.
        dy: i32,
    },
}

impl fmt::Display for ScalarOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarOperand::Imm(v) => write!(f, "{v}"),
            ScalarOperand::Load { buffer, x, dy } => write!(f, "{buffer}[{x}, y+{dy}]"),
        }
    }
}

/// An HVX-style operation. Element types name the *interpretation* of the
/// raw register bytes; immediates are embedded in the op.
///
/// Widening operations (`vmpy`, `vmpa`, `vtmpy`, `vzxt`, ...) produce
/// *deinterleaved* register pairs (even result lanes in `lo`); narrowing
/// operations (`vpack`, `vasr`-narrow) consume two registers and
/// re-interleave. See the crate docs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant fields are documented in the semantics table of `exec`
pub enum Op {
    // -- sources ----------------------------------------------------------
    /// Vector load of the tile's lanes from `buffer(x0 + dx .., y0 + dy)`.
    Vmem { buffer: String, dx: i32, dy: i32, elem: ElemType },
    /// Scalar broadcast. Zero-cost: loop-invariant, hoisted by LLVM.
    Vsplat { value: ScalarOperand, elem: ElemType },

    // -- vector ALU -------------------------------------------------------
    Vadd { elem: ElemType, sat: bool },
    Vsub { elem: ElemType, sat: bool },
    Vavg { elem: ElemType, round: bool },
    Vnavg { elem: ElemType },
    Vabsdiff { elem: ElemType },
    Vmax { elem: ElemType },
    Vmin { elem: ElemType },
    Vand,
    Vor,
    Vxor,
    Vnot,

    // -- shifts -----------------------------------------------------------
    Vasl { elem: ElemType, shift: u32 },
    Vasr { elem: ElemType, shift: u32 },
    Vlsr { elem: ElemType, shift: u32 },
    /// Fused narrowing shift: `(odd_src, even_src)` → interleaved vector of
    /// the half-width type `out`, with optional rounding and saturation
    /// (`vasrhubsat` and friends).
    VasrNarrow { elem: ElemType, shift: u32, round: bool, sat: bool, out: ElemType },

    // -- multiplies -------------------------------------------------------
    /// Widening lane-wise multiply → deinterleaved pair.
    Vmpy { elem: ElemType },
    /// Widening multiply by a scalar → deinterleaved pair.
    VmpyScalar { elem: ElemType, scalar: ScalarOperand },
    /// `acc(pair) + widen(x) * scalar` → pair (deinterleaved accumulate).
    VmpyAcc { elem: ElemType, scalar: ScalarOperand },
    /// Non-widening multiply by a scalar.
    Vmpyi { elem: ElemType, scalar: ScalarOperand },
    /// `acc + x * scalar`, non-widening.
    VmpyiAcc { elem: ElemType, scalar: ScalarOperand },
    /// Word × even (unsigned) halfword: `out.w[i] = w[i] * uh(h[2i])`.
    Vmpyie,
    /// Word × odd (signed) halfword: `out.w[i] = w[i] * h[2i+1]`.
    Vmpyio,
    /// Two-source widening multiply-add `a*w0 + b*w1` → deinterleaved pair.
    Vmpa { elem: ElemType, w0: i64, w1: i64 },
    /// `acc(pair) + a*w0 + b*w1` → pair.
    VmpaAcc { elem: ElemType, w0: i64, w1: i64 },
    /// Sliding-window 3-tap `c[i]*w0 + c[i+1]*w1 + c[i+2]` over `c = a ++ b`
    /// → deinterleaved pair (the third tap weight is fixed at 1, as on HVX).
    Vtmpy { elem: ElemType, w0: i64, w1: i64 },
    /// Accumulating `vtmpy`.
    VtmpyAcc { elem: ElemType, w0: i64, w1: i64 },
    /// Pairwise widening dot: `out[i] = a[2i]*w0 + a[2i+1]*w1` (halves the
    /// lane count; natural order).
    Vdmpy { elem: ElemType, w0: i64, w1: i64 },
    /// Accumulating `vdmpy`.
    VdmpyAcc { elem: ElemType, w0: i64, w1: i64 },
    /// 4-way widening reduce: `out[i] = Σ_k a[4i+k]*w[k]` (quarter lane
    /// count, double-widened type; natural order).
    Vrmpy { elem: ElemType, w: [i64; 4] },
    /// Accumulating `vrmpy`.
    VrmpyAcc { elem: ElemType, w: [i64; 4] },

    // -- narrowing packs --------------------------------------------------
    /// Interleaving narrow: `(odd_src, even_src)` → vector of half-width
    /// `out`, truncating (`vshuffe`) or saturating (`vpack:sat`, `vsat`).
    Vpack { elem: ElemType, sat: bool, out: ElemType },

    // -- permutes ---------------------------------------------------------
    /// `(hi, lo)` → pair.
    Vcombine,
    /// Low register of a pair (zero-cost).
    Lo,
    /// High register of a pair (zero-cost).
    Hi,
    /// Interleave a pair at `elem` granularity (deinterleaved → natural;
    /// `vshuffvdd`).
    VshuffPair { elem: ElemType },
    /// Deinterleave a pair at `elem` granularity (natural → deinterleaved;
    /// `vdealvdd`).
    VdealPair { elem: ElemType },
    /// Byte window into `b ++ a` starting at `bytes` (`valign`).
    Valign { bytes: u32 },
    /// Rotate register bytes right (`vror`).
    Vror { bytes: u32 },
    /// Zero-extending widen → deinterleaved pair (`vzxt`).
    Vzxt { elem: ElemType },
    /// Sign-extending widen → deinterleaved pair (`vsxt`).
    Vsxt { elem: ElemType },
}

impl Op {
    /// Number of value arguments the op takes.
    pub fn arity(&self) -> usize {
        match self {
            Op::Vmem { .. } | Op::Vsplat { .. } => 0,
            Op::Vnot
            | Op::Vasl { .. }
            | Op::Vasr { .. }
            | Op::Vlsr { .. }
            | Op::Vmpyi { .. }
            | Op::VmpyScalar { .. }
            | Op::Vdmpy { .. }
            | Op::Vrmpy { .. }
            | Op::Lo
            | Op::Hi
            | Op::VshuffPair { .. }
            | Op::VdealPair { .. }
            | Op::Vror { .. }
            | Op::Vzxt { .. }
            | Op::Vsxt { .. } => 1,
            Op::Vadd { .. }
            | Op::Vsub { .. }
            | Op::Vavg { .. }
            | Op::Vnavg { .. }
            | Op::Vabsdiff { .. }
            | Op::Vmax { .. }
            | Op::Vmin { .. }
            | Op::Vand
            | Op::Vor
            | Op::Vxor
            | Op::VasrNarrow { .. }
            | Op::Vmpy { .. }
            | Op::VmpyAcc { .. }
            | Op::VmpyiAcc { .. }
            | Op::Vmpyie
            | Op::Vmpyio
            | Op::Vmpa { .. }
            | Op::Vpack { .. }
            | Op::Vcombine
            | Op::Valign { .. }
            | Op::VdmpyAcc { .. }
            | Op::VrmpyAcc { .. }
            | Op::Vtmpy { .. } => 2,
            Op::VmpaAcc { .. } | Op::VtmpyAcc { .. } => 3,
        }
    }

    /// The hardware resource the op occupies.
    pub fn resource(&self) -> Resource {
        match self {
            Op::Vmem { .. } => Resource::Load,
            Op::Vadd { .. }
            | Op::Vsub { .. }
            | Op::Vavg { .. }
            | Op::Vnavg { .. }
            | Op::Vabsdiff { .. }
            | Op::Vmax { .. }
            | Op::Vmin { .. }
            | Op::Vand
            | Op::Vor
            | Op::Vxor
            | Op::Vnot => Resource::Alu,
            Op::Vasl { .. } | Op::Vasr { .. } | Op::Vlsr { .. } | Op::VasrNarrow { .. } => {
                Resource::Shift
            }
            Op::Vmpy { .. }
            | Op::VmpyScalar { .. }
            | Op::VmpyAcc { .. }
            | Op::Vmpyi { .. }
            | Op::VmpyiAcc { .. }
            | Op::Vmpyie
            | Op::Vmpyio
            | Op::Vmpa { .. }
            | Op::VmpaAcc { .. }
            | Op::Vtmpy { .. }
            | Op::VtmpyAcc { .. }
            | Op::Vdmpy { .. }
            | Op::VdmpyAcc { .. }
            | Op::Vrmpy { .. }
            | Op::VrmpyAcc { .. } => Resource::Mpy,
            Op::Vsplat { .. }
            | Op::Vpack { .. }
            | Op::Vcombine
            | Op::Lo
            | Op::Hi
            | Op::VshuffPair { .. }
            | Op::VdealPair { .. }
            | Op::Valign { .. }
            | Op::Vror { .. }
            | Op::Vzxt { .. }
            | Op::Vsxt { .. } => Resource::Permute,
        }
    }

    /// Whether the op is free for cost purposes: broadcasts of
    /// loop-invariant scalars are hoisted by LLVM (the paper excludes them
    /// from latency), and `lo`/`hi` of a pair are register-allocation
    /// artifacts.
    pub fn is_free(&self) -> bool {
        matches!(self, Op::Vsplat { .. } | Op::Lo | Op::Hi)
    }

    /// Issue-to-result latency in cycles (0 for free ops, 2 for the
    /// multiplier pipeline, 1 otherwise).
    pub fn latency(&self) -> u32 {
        if self.is_free() {
            0
        } else if self.resource() == Resource::Mpy {
            2
        } else {
            1
        }
    }

    /// Whether this is a data-movement (swizzle) op rather than compute.
    /// Loads and swizzles are what `??load`/`??swizzle` holes abstract in
    /// swizzle-free sketches (§4).
    pub fn is_swizzle(&self) -> bool {
        matches!(
            self,
            Op::Vmem { .. }
                | Op::Vsplat { .. }
                | Op::Vcombine
                | Op::Lo
                | Op::Hi
                | Op::VshuffPair { .. }
                | Op::VdealPair { .. }
                | Op::Valign { .. }
                | Op::Vror { .. }
        )
    }

    /// Mnemonic (without operands), e.g. `vtmpy` or `vadd:sat`.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Vmem { .. } => "vmem".into(),
            Op::Vsplat { .. } => "vsplat".into(),
            Op::Vadd { sat, .. } => if *sat { "vadd:sat" } else { "vadd" }.into(),
            Op::Vsub { sat, .. } => if *sat { "vsub:sat" } else { "vsub" }.into(),
            Op::Vavg { round, .. } => if *round { "vavg:rnd" } else { "vavg" }.into(),
            Op::Vnavg { .. } => "vnavg".into(),
            Op::Vabsdiff { .. } => "vabsdiff".into(),
            Op::Vmax { .. } => "vmax".into(),
            Op::Vmin { .. } => "vmin".into(),
            Op::Vand => "vand".into(),
            Op::Vor => "vor".into(),
            Op::Vxor => "vxor".into(),
            Op::Vnot => "vnot".into(),
            Op::Vasl { .. } => "vasl".into(),
            Op::Vasr { .. } => "vasr".into(),
            Op::Vlsr { .. } => "vlsr".into(),
            Op::VasrNarrow { round, sat, .. } => {
                let mut s = "vasr-narrow".to_owned();
                if *round {
                    s.push_str(":rnd");
                }
                if *sat {
                    s.push_str(":sat");
                }
                s
            }
            Op::Vmpy { .. } => "vmpy".into(),
            Op::VmpyScalar { .. } => "vmpy".into(),
            Op::VmpyAcc { .. } => "vmpy-acc".into(),
            Op::Vmpyi { .. } => "vmpyi".into(),
            Op::VmpyiAcc { .. } => "vmpyi-acc".into(),
            Op::Vmpyie => "vmpyie".into(),
            Op::Vmpyio => "vmpyio".into(),
            Op::Vmpa { .. } => "vmpa".into(),
            Op::VmpaAcc { .. } => "vmpa-acc".into(),
            Op::Vtmpy { .. } => "vtmpy".into(),
            Op::VtmpyAcc { .. } => "vtmpy-acc".into(),
            Op::Vdmpy { .. } => "vdmpy".into(),
            Op::VdmpyAcc { .. } => "vdmpy-acc".into(),
            Op::Vrmpy { .. } => "vrmpy".into(),
            Op::VrmpyAcc { .. } => "vrmpy-acc".into(),
            Op::Vpack { sat, .. } => if *sat { "vpack:sat" } else { "vshuffe" }.into(),
            Op::Vcombine => "vcombine".into(),
            Op::Lo => "lo".into(),
            Op::Hi => "hi".into(),
            Op::VshuffPair { .. } => "vshuffvdd".into(),
            Op::VdealPair { .. } => "vdealvdd".into(),
            Op::Valign { .. } => "valign".into(),
            Op::Vror { .. } => "vror".into(),
            Op::Vzxt { .. } => "vzxt".into(),
            Op::Vsxt { .. } => "vsxt".into(),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Vmem { buffer, dx, dy, elem } => {
                write!(f, "vmem.{elem}({buffer}, x{dx:+}, y{dy:+})")
            }
            Op::Vsplat { value, elem } => write!(f, "vsplat.{elem}({value})"),
            Op::Vmpa { elem, w0, w1 } | Op::VmpaAcc { elem, w0, w1 } => {
                write!(f, "{}.{elem}(w={w0},{w1})", self.mnemonic())
            }
            Op::Vtmpy { elem, w0, w1 } | Op::VtmpyAcc { elem, w0, w1 } => {
                write!(f, "{}.{elem}(w={w0},{w1},1)", self.mnemonic())
            }
            Op::Vdmpy { elem, w0, w1 } | Op::VdmpyAcc { elem, w0, w1 } => {
                write!(f, "{}.{elem}(w={w0},{w1})", self.mnemonic())
            }
            Op::Vrmpy { elem, w } | Op::VrmpyAcc { elem, w } => {
                write!(f, "{}.{elem}(w={},{},{},{})", self.mnemonic(), w[0], w[1], w[2], w[3])
            }
            Op::VmpyScalar { elem, scalar }
            | Op::VmpyAcc { elem, scalar }
            | Op::Vmpyi { elem, scalar }
            | Op::VmpyiAcc { elem, scalar } => {
                write!(f, "{}.{elem}({scalar})", self.mnemonic())
            }
            Op::Vasl { elem, shift } | Op::Vasr { elem, shift } | Op::Vlsr { elem, shift } => {
                write!(f, "{}.{elem}(#{shift})", self.mnemonic())
            }
            Op::VasrNarrow { elem, shift, out, .. } => {
                write!(f, "{}.{elem}->{out}(#{shift})", self.mnemonic())
            }
            Op::Vpack { elem, out, .. } => write!(f, "{}.{elem}->{out}", self.mnemonic()),
            Op::Valign { bytes } | Op::Vror { bytes } => {
                write!(f, "{}(#{bytes})", self.mnemonic())
            }
            Op::Vadd { elem, .. }
            | Op::Vsub { elem, .. }
            | Op::Vavg { elem, .. }
            | Op::Vnavg { elem }
            | Op::Vabsdiff { elem }
            | Op::Vmax { elem }
            | Op::Vmin { elem }
            | Op::Vmpy { elem }
            | Op::VshuffPair { elem }
            | Op::VdealPair { elem }
            | Op::Vzxt { elem }
            | Op::Vsxt { elem } => write!(f, "{}.{elem}", self.mnemonic()),
            _ => write!(f, "{}", self.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_consistency() {
        let vtmpy = Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 };
        assert_eq!(vtmpy.resource(), Resource::Mpy);
        assert_eq!(vtmpy.latency(), 2);
        assert_eq!(vtmpy.arity(), 2);
        assert!(!vtmpy.is_swizzle());
        assert!(!vtmpy.is_free());

        let splat = Op::Vsplat { value: ScalarOperand::Imm(2), elem: ElemType::U16 };
        assert!(splat.is_free());
        assert_eq!(splat.latency(), 0);
        assert!(splat.is_swizzle());

        let add = Op::Vadd { elem: ElemType::I16, sat: false };
        assert_eq!(add.resource(), Resource::Alu);
        assert_eq!(add.latency(), 1);
    }

    #[test]
    fn display_is_informative() {
        let op = Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 };
        assert_eq!(op.to_string(), "vtmpy.u8(w=1,2,1)");
        let op = Op::VasrNarrow {
            elem: ElemType::I16,
            shift: 4,
            round: true,
            sat: true,
            out: ElemType::U8,
        };
        assert_eq!(op.to_string(), "vasr-narrow:rnd:sat.i16->u8(#4)");
        let op = Op::Vmem { buffer: "in".into(), dx: -1, dy: 1, elem: ElemType::U8 };
        assert_eq!(op.to_string(), "vmem.u8(in, x-1, y+1)");
    }

    #[test]
    fn swizzle_classification() {
        assert!(Op::Vcombine.is_swizzle());
        assert!(Op::VshuffPair { elem: ElemType::U16 }.is_swizzle());
        assert!(Op::Valign { bytes: 2 }.is_swizzle());
        assert!(!Op::Vpack { elem: ElemType::I16, sat: true, out: ElemType::U8 }.is_swizzle());
        assert!(!Op::Vadd { elem: ElemType::U8, sat: false }.is_swizzle());
    }
}
