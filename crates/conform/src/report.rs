//! Coverage reporting: which lifting rules and HVX opcodes the
//! conformance corpus reached, which it never did, and which gaps are
//! deliberately waived.

use driver::json::Json;

use crate::harness::Summary;

/// Why an uncovered rule or opcode is acceptable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaiverKind {
    /// A `synth::lift` rule site.
    Rule,
    /// An HVX opcode mnemonic.
    Opcode,
}

impl WaiverKind {
    fn name(self) -> &'static str {
        match self {
            WaiverKind::Rule => "rule",
            WaiverKind::Opcode => "opcode",
        }
    }
}

/// A deliberate, documented coverage gap.
#[derive(Debug, Clone, Copy)]
pub struct Waiver {
    /// Catalog name (a `synth::coverage::RULES` site or `OPCODES`
    /// mnemonic).
    pub name: &'static str,
    pub kind: WaiverKind,
    /// Why the gap is expected rather than a corpus hole.
    pub reason: &'static str,
}

/// Coverage gaps that are structural, not corpus weaknesses. Everything
/// else uncovered is actionable: seed an expression toward it or add a
/// waiver here with a reason.
pub fn waivers() -> Vec<Waiver> {
    use WaiverKind::Opcode;
    let swizzle = "swizzle-layer opcode: only emitted for multi-vector layouts, \
                   which the quick-scaled conformance widths deliberately avoid";
    let accumulate = "accumulating multiply form: requires a double-vector \
                      accumulator chain deeper than the quick corpus' node budget";
    vec![
        Waiver { name: "vshuffvdd", kind: Opcode, reason: swizzle },
        Waiver { name: "vdealvdd", kind: Opcode, reason: swizzle },
        Waiver { name: "valign", kind: Opcode, reason: swizzle },
        Waiver { name: "vror", kind: Opcode, reason: swizzle },
        Waiver { name: "vcombine", kind: Opcode, reason: swizzle },
        Waiver { name: "vmpy-acc", kind: Opcode, reason: accumulate },
        Waiver { name: "vmpyi-acc", kind: Opcode, reason: accumulate },
        Waiver { name: "vmpa-acc", kind: Opcode, reason: accumulate },
        Waiver { name: "vtmpy-acc", kind: Opcode, reason: accumulate },
        Waiver { name: "vdmpy-acc", kind: Opcode, reason: accumulate },
        Waiver { name: "vrmpy-acc", kind: Opcode, reason: accumulate },
        Waiver {
            name: "vnot",
            kind: Opcode,
            reason: "no bitwise-not in the Halide-IR surface the corpus draws from",
        },
    ]
}

fn is_waived(name: &str, kind: WaiverKind) -> bool {
    waivers().iter().any(|w| w.name == name && w.kind == kind)
}

fn counts_obj(counts: &[(&'static str, u64)]) -> Json {
    Json::Obj(counts.iter().map(|&(name, n)| (name.to_owned(), Json::from(n))).collect())
}

fn uncovered(counts: &[(&'static str, u64)], kind: WaiverKind) -> Vec<&'static str> {
    counts
        .iter()
        .filter(|&&(name, n)| n == 0 && !is_waived(name, kind))
        .map(|&(name, _)| name)
        .collect()
}

/// Build the `rake-conform-coverage-v1` report from the coverage
/// counters accumulated during a [`crate::harness::run`] and the run's
/// [`Summary`].
pub fn coverage_report(seed: u64, summary: &Summary) -> Json {
    let rules = synth::coverage::rule_counts();
    let opcodes = synth::coverage::opcode_counts();
    let uncovered_rules = uncovered(&rules, WaiverKind::Rule);
    let uncovered_opcodes = uncovered(&opcodes, WaiverKind::Opcode);
    let waived: Vec<Json> = waivers()
        .iter()
        .map(|w| {
            Json::obj([
                ("name", Json::from(w.name)),
                ("kind", Json::from(w.kind.name())),
                ("reason", Json::from(w.reason)),
            ])
        })
        .collect();
    let relations = Json::Obj(
        summary
            .per_relation
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    Json::obj([
                        ("applied", Json::from(s.applied)),
                        ("skipped", Json::from(s.skipped)),
                        ("violations", Json::from(s.violations)),
                        ("cost_violations", Json::from(s.cost_violations)),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj([
        ("schema", Json::from("rake-conform-coverage-v1")),
        ("seed", Json::from(seed)),
        ("exprs", Json::from(summary.exprs)),
        ("pairs", Json::from(summary.pairs)),
        ("points", Json::from(summary.points)),
        ("violations", Json::from(summary.violations)),
        ("cost_violations", Json::from(summary.cost_violations)),
        ("unsound_relations", Json::from(summary.unsound)),
        ("skipped_pairs", Json::from(summary.skipped_pairs)),
        ("truncated", Json::from(summary.truncated)),
        ("rules", counts_obj(&rules)),
        ("opcodes", counts_obj(&opcodes)),
        ("uncovered_rules", Json::Arr(uncovered_rules.iter().map(|&n| Json::from(n)).collect())),
        (
            "uncovered_opcodes",
            Json::Arr(uncovered_opcodes.iter().map(|&n| Json::from(n)).collect()),
        ),
        ("waived", Json::Arr(waived)),
        ("relations", relations),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waivers_reference_real_catalog_entries() {
        for w in waivers() {
            let catalog: &[&str] = match w.kind {
                WaiverKind::Rule => synth::coverage::RULES,
                WaiverKind::Opcode => synth::coverage::OPCODES,
            };
            assert!(catalog.contains(&w.name), "waiver {} not in catalog", w.name);
            assert!(!w.reason.is_empty());
        }
    }

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let mut summary = Summary::default();
        summary.per_relation.insert("commute".to_owned(), Default::default());
        let report = coverage_report(42, &summary);
        let text = report.to_string();
        let parsed = driver::json::parse(&text).expect("report parses");
        assert_eq!(parsed.get("schema").and_then(|s| s.as_str()), Some("rake-conform-coverage-v1"));
        assert_eq!(parsed.get("seed").and_then(|s| s.as_i64()), Some(42));
        assert!(parsed.get("rules").is_some());
        assert!(parsed.get("uncovered_rules").is_some());
    }
}
