//! The metamorphic relation catalog: semantics-preserving Halide-IR
//! transformations.
//!
//! Each [`Relation`] rewrites an expression into a variant that must
//! compute the same lanes — possibly on alpha-renamed buffers
//! ([`Applied::renames`]) or at a shifted tile origin
//! ([`Applied::origin_dx`]). A relation that does not apply to a given
//! expression returns `None` and the harness counts a skip, never a
//! silent pass.
//!
//! Soundness of every relation is itself tested here (interpreter vs.
//! interpreter over adversarial environments) so a harness "violation"
//! always indicts the compiler, not the catalog.

use halide_ir::{BinOp, Binary, Broadcast, Cast, Expr, Load, Shift, ShiftDir};

/// Declared cost envelope for a relation: the transformed variant's
/// cost must satisfy `variant * den <= base * num + slack * den`
/// (i.e. `variant <= base * num/den + slack`).
#[derive(Debug, Clone, Copy)]
pub struct Envelope {
    /// Numerator of the allowed cost growth factor.
    pub num: u32,
    /// Denominator of the allowed cost growth factor.
    pub den: u32,
    /// Absolute slack in cost units on top of the factor.
    pub slack: u32,
}

impl Envelope {
    /// Whether `variant` cost is within the envelope of `base` cost.
    pub fn allows(&self, base: u32, variant: u32) -> bool {
        u64::from(variant) * u64::from(self.den)
            <= u64::from(base) * u64::from(self.num) + u64::from(self.slack) * u64::from(self.den)
    }
}

/// A transformed expression plus the evaluation adjustments that make it
/// output-equivalent to the original.
#[derive(Debug, Clone)]
pub struct Applied {
    /// The transformed expression.
    pub expr: Expr,
    /// Evaluate the variant at `x0 + origin_dx` to align with the base
    /// evaluated at `x0` (used by the uniform offset-shift relation).
    pub origin_dx: i64,
    /// Buffer renames `(old, new)`: the variant reads `new`, which must
    /// hold the same contents the base's `old` holds.
    pub renames: Vec<(String, String)>,
}

impl Applied {
    fn plain(expr: Expr) -> Applied {
        Applied { expr, origin_dx: 0, renames: Vec::new() }
    }
}

/// One metamorphic relation.
pub struct Relation {
    /// Stable identifier (used in reports, `--relations` filters, and
    /// repro tags).
    pub name: &'static str,
    /// One-line description for the report.
    pub summary: &'static str,
    /// Declared cost envelope.
    pub envelope: Envelope,
    /// The rewrite; `None` when the relation does not apply.
    pub apply: fn(&Expr) -> Option<Applied>,
}

/// The full catalog, in report order.
pub fn catalog() -> Vec<Relation> {
    // Structure-preserving relations must cost the same program (the
    // canonicalizing cache should even serve the identical artifact);
    // structure-changing ones get headroom for a genuinely different
    // synthesis outcome.
    let tight = Envelope { num: 1, den: 1, slack: 2 };
    let loose = Envelope { num: 2, den: 1, slack: 6 };
    vec![
        Relation {
            name: "commute",
            summary: "swap operands of every commutative binary operation",
            envelope: tight,
            apply: commute,
        },
        Relation {
            name: "alpha-rename",
            summary: "rename every buffer, carrying contents along",
            envelope: tight,
            apply: alpha_rename,
        },
        Relation {
            name: "offset-shift",
            summary: "shift every load offset by +1 and the tile origin by -1",
            envelope: Envelope { num: 1, den: 1, slack: 4 },
            apply: offset_shift,
        },
        Relation {
            name: "mul-to-shift",
            summary: "strength-reduce multiplication by 2^k to a left shift",
            envelope: loose,
            apply: mul_to_shift,
        },
        Relation {
            name: "shift-to-mul",
            summary: "expand a left shift by k into multiplication by 2^k",
            envelope: loose,
            apply: shift_to_mul,
        },
        Relation {
            name: "widen-narrow",
            summary: "wrap the root in a widen-then-truncate identity",
            envelope: loose,
            apply: widen_narrow,
        },
        Relation {
            name: "distribute",
            summary: "distribute multiplication over addition",
            envelope: loose,
            apply: distribute,
        },
        Relation {
            name: "factor",
            summary: "factor a common multiplicand out of a sum of products",
            envelope: loose,
            apply: factor,
        },
        Relation {
            name: "const-unfold",
            summary: "split a broadcast constant into a sum of two halves",
            envelope: loose,
            apply: const_unfold,
        },
        Relation {
            name: "reassoc",
            summary: "reassociate a left-leaning addition chain rightward",
            envelope: loose,
            apply: reassoc,
        },
        Relation {
            name: "identity-pad",
            summary: "add a broadcast zero to the root",
            // The splat + add look free on paper, but at quick-scaled
            // widths they can push a short program into an extra
            // resource-class column, so the absolute slack dominates.
            envelope: Envelope { num: 1, den: 1, slack: 6 },
            apply: identity_pad,
        },
        Relation {
            name: "shr-split",
            summary: "split a right shift by k>=2 into two composed shifts",
            envelope: loose,
            apply: shr_split,
        },
    ]
}

/// Rebuild `e` with `f` applied to every node bottom-up.
fn map_expr(e: &Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => e.clone(),
        Expr::Cast(c) => Expr::Cast(Cast {
            to: c.to,
            saturating: c.saturating,
            arg: Box::new(map_expr(&c.arg, f)),
        }),
        Expr::Binary(b) => Expr::Binary(Binary {
            op: b.op,
            lhs: Box::new(map_expr(&b.lhs, f)),
            rhs: Box::new(map_expr(&b.rhs, f)),
        }),
        Expr::Shift(s) => {
            Expr::Shift(Shift { dir: s.dir, amount: s.amount, arg: Box::new(map_expr(&s.arg, f)) })
        }
    };
    f(rebuilt)
}

fn commute(e: &Expr) -> Option<Applied> {
    let mut swapped = 0usize;
    let out = map_expr(e, &mut |n| match n {
        Expr::Binary(b) if b.op.is_commutative() => {
            swapped += 1;
            Expr::Binary(Binary { op: b.op, lhs: b.rhs, rhs: b.lhs })
        }
        other => other,
    });
    (swapped > 0).then(|| Applied::plain(out))
}

fn alpha_rename(e: &Expr) -> Option<Applied> {
    let names = halide_ir::analysis::buffer_types(e);
    if names.is_empty() {
        return None;
    }
    let renames: Vec<(String, String)> =
        names.keys().map(|n| (n.clone(), format!("{n}_r"))).collect();
    let out = map_expr(e, &mut |n| match n {
        Expr::Load(mut l) => {
            l.buffer = format!("{}_r", l.buffer);
            Expr::Load(l)
        }
        Expr::BroadcastLoad(mut b) => {
            b.buffer = format!("{}_r", b.buffer);
            Expr::BroadcastLoad(b)
        }
        other => other,
    });
    Some(Applied { expr: out, origin_dx: 0, renames })
}

fn offset_shift(e: &Expr) -> Option<Applied> {
    // `input(x + dx)` at origin `x0` equals `input(x + dx + 1)` at origin
    // `x0 - 1`. `BroadcastLoad` columns are absolute (not origin-relative)
    // so they are untouched and unaffected by the origin shift; rows are
    // untouched because the origin only moves in x.
    let mut loads = 0usize;
    let out = map_expr(e, &mut |n| match n {
        Expr::Load(l) => {
            loads += 1;
            Expr::Load(Load { dx: l.dx + 1, ..l })
        }
        other => other,
    });
    (loads > 0).then(|| Applied { expr: out, origin_dx: -1, renames: Vec::new() })
}

/// `v` as a power of two exponent, if it is one (and at least 2).
fn pow2_exponent(v: i64) -> Option<u32> {
    (v >= 2 && v & (v - 1) == 0).then(|| v.trailing_zeros())
}

fn mul_to_shift(e: &Expr) -> Option<Applied> {
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if let Expr::Binary(b) = &n {
            if b.op == BinOp::Mul {
                for (x, c) in [(&b.lhs, &b.rhs), (&b.rhs, &b.lhs)] {
                    if let Expr::Broadcast(bc) = c.as_ref() {
                        if let Some(k) = pow2_exponent(bc.value) {
                            if k < n.ty().bits() {
                                hits += 1;
                                return Expr::Shift(Shift {
                                    dir: ShiftDir::Left,
                                    amount: k,
                                    arg: x.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

fn shift_to_mul(e: &Expr) -> Option<Applied> {
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if let Expr::Shift(s) = &n {
            // 2^amount must be canonical in the element type; a left shift
            // that overflows the type's positive range has no broadcast
            // equivalent (e.g. `i16 << 15`).
            if s.dir == ShiftDir::Left && s.amount >= 1 {
                let ty = n.ty();
                if let Some(v) = 1i64.checked_shl(s.amount) {
                    if ty.contains(v) {
                        hits += 1;
                        return Expr::Binary(Binary {
                            op: BinOp::Mul,
                            lhs: s.arg.clone(),
                            rhs: Box::new(Expr::Broadcast(Broadcast { value: v, ty })),
                        });
                    }
                }
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

fn widen_narrow(e: &Expr) -> Option<Applied> {
    let ty = e.ty();
    let wide = ty.widened()?;
    // widen (zero/sign extend) then truncate back is the identity on
    // every canonical value.
    let widened = Expr::Cast(Cast { to: wide, saturating: false, arg: Box::new(e.clone()) });
    let back = Expr::Cast(Cast { to: ty, saturating: false, arg: Box::new(widened) });
    Some(Applied::plain(back))
}

fn distribute(e: &Expr) -> Option<Applied> {
    // Wrapping multiplication distributes over wrapping addition.
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if hits > 0 {
            return n; // first match only: keeps the variant close in size
        }
        if let Expr::Binary(b) = &n {
            if b.op == BinOp::Mul {
                for (a, sum) in [(&b.lhs, &b.rhs), (&b.rhs, &b.lhs)] {
                    if let Expr::Binary(s) = sum.as_ref() {
                        if s.op == BinOp::Add {
                            hits += 1;
                            let mul = |x: &Expr| {
                                Expr::Binary(Binary {
                                    op: BinOp::Mul,
                                    lhs: a.clone(),
                                    rhs: Box::new(x.clone()),
                                })
                            };
                            return Expr::Binary(Binary {
                                op: BinOp::Add,
                                lhs: Box::new(mul(&s.lhs)),
                                rhs: Box::new(mul(&s.rhs)),
                            });
                        }
                    }
                }
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

fn factor(e: &Expr) -> Option<Applied> {
    // a*b + a*c == a*(b + c) under wrapping arithmetic.
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if hits > 0 {
            return n;
        }
        if let Expr::Binary(add) = &n {
            if add.op == BinOp::Add {
                if let (Expr::Binary(l), Expr::Binary(r)) = (add.lhs.as_ref(), add.rhs.as_ref()) {
                    if l.op == BinOp::Mul && r.op == BinOp::Mul {
                        // Try each pairing of a common multiplicand.
                        let pairs = [
                            (&l.lhs, &l.rhs, &r.lhs, &r.rhs),
                            (&l.lhs, &l.rhs, &r.rhs, &r.lhs),
                            (&l.rhs, &l.lhs, &r.lhs, &r.rhs),
                            (&l.rhs, &l.lhs, &r.rhs, &r.lhs),
                        ];
                        for (a1, b, a2, c) in pairs {
                            if a1 == a2 {
                                // The lowering only handles multiplication
                                // by a leaf, so fold two broadcast weights
                                // into one (a*3 + a*5 == a*8 under
                                // wrapping arithmetic); other factored
                                // sums would never compile and the pair
                                // would count as a skip, not a check.
                                let folded = match (b.as_ref(), c.as_ref()) {
                                    (Expr::Broadcast(bb), Expr::Broadcast(cb))
                                        if bb.ty == cb.ty
                                            && bb.ty.contains(bb.value + cb.value) =>
                                    {
                                        Some(Expr::Broadcast(Broadcast {
                                            value: bb.value + cb.value,
                                            ty: bb.ty,
                                        }))
                                    }
                                    _ => None,
                                };
                                let sum = folded.unwrap_or_else(|| {
                                    Expr::Binary(Binary {
                                        op: BinOp::Add,
                                        lhs: b.clone(),
                                        rhs: c.clone(),
                                    })
                                });
                                hits += 1;
                                return Expr::Binary(Binary {
                                    op: BinOp::Mul,
                                    lhs: a1.clone(),
                                    rhs: Box::new(sum),
                                });
                            }
                        }
                    }
                }
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

fn const_unfold(e: &Expr) -> Option<Applied> {
    // bcast(v) == bcast(v - v/2) + bcast(v/2) exactly, whenever both
    // halves are canonical (always true: |v/2| <= |v| and same sign).
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if let Expr::Broadcast(b) = &n {
            let half = b.value / 2;
            let rest = b.value - half;
            if half != 0 && b.ty.contains(half) && b.ty.contains(rest) {
                hits += 1;
                return Expr::Binary(Binary {
                    op: BinOp::Add,
                    lhs: Box::new(Expr::Broadcast(Broadcast { value: rest, ty: b.ty })),
                    rhs: Box::new(Expr::Broadcast(Broadcast { value: half, ty: b.ty })),
                });
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

fn reassoc(e: &Expr) -> Option<Applied> {
    // (a + b) + c == a + (b + c) under wrapping addition.
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if hits > 0 {
            return n;
        }
        if let Expr::Binary(outer) = &n {
            if outer.op == BinOp::Add {
                if let Expr::Binary(inner) = outer.lhs.as_ref() {
                    if inner.op == BinOp::Add {
                        hits += 1;
                        return Expr::Binary(Binary {
                            op: BinOp::Add,
                            lhs: inner.lhs.clone(),
                            rhs: Box::new(Expr::Binary(Binary {
                                op: BinOp::Add,
                                lhs: inner.rhs.clone(),
                                rhs: outer.rhs.clone(),
                            })),
                        });
                    }
                }
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

fn identity_pad(e: &Expr) -> Option<Applied> {
    let zero = Expr::Broadcast(Broadcast { value: 0, ty: e.ty() });
    Some(Applied::plain(Expr::Binary(Binary {
        op: BinOp::Add,
        lhs: Box::new(e.clone()),
        rhs: Box::new(zero),
    })))
}

fn shr_split(e: &Expr) -> Option<Applied> {
    // Right shift is floor division (arithmetic for signed, logical for
    // unsigned canonical values), and floor division composes:
    // (x >> 1) >> (k-1) == x >> k.
    let mut hits = 0usize;
    let out = map_expr(e, &mut |n| {
        if let Expr::Shift(s) = &n {
            if s.dir == ShiftDir::Right && s.amount >= 2 {
                hits += 1;
                let first =
                    Expr::Shift(Shift { dir: ShiftDir::Right, amount: 1, arg: s.arg.clone() });
                return Expr::Shift(Shift {
                    dir: ShiftDir::Right,
                    amount: s.amount - 1,
                    arg: Box::new(first),
                });
            }
        }
        n
    });
    (hits > 0).then(|| Applied::plain(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{builder as hb, eval, Buffer2D, Env, EvalCtx};
    use lanes::ElemType;
    use oracle::Oracle;

    /// Interp-vs-interp soundness: every relation applied to every
    /// workload expression (and a few synthetic shapes) must agree with
    /// the original on adversarial environments at every origin.
    fn assert_sound(rel: &Relation, e: &Expr) {
        let Some(applied) = (rel.apply)(e) else { return };
        let oracle = Oracle { seed: 7, ..Oracle::default() };
        for env in oracle.envs_for(e) {
            let var_env = rename_env(&env, &applied.renames);
            for &(x0, y0) in &oracle.origins {
                let base = eval(e, &EvalCtx { env: &env, x0, y0, lanes: oracle.lanes });
                let var = eval(
                    &applied.expr,
                    &EvalCtx { env: &var_env, x0: x0 + applied.origin_dx, y0, lanes: oracle.lanes },
                );
                let (Ok(base), Ok(var)) = (base, var) else {
                    panic!("{}: interp failed on {}", rel.name, halide_ir::sexpr::to_sexpr(e))
                };
                assert!(
                    oracle::first_mismatch(&base, &var).is_none(),
                    "{} unsound on {} (variant {})",
                    rel.name,
                    halide_ir::sexpr::to_sexpr(e),
                    halide_ir::sexpr::to_sexpr(&applied.expr),
                );
            }
        }
    }

    fn rename_env(env: &Env, renames: &[(String, String)]) -> Env {
        let mut out = env.clone();
        for (old, new) in renames {
            if let Some(b) = env.get(old) {
                out.insert(Buffer2D::from_fn(new, b.elem(), b.width(), b.height(), |x, y| {
                    b.get(x as i64, y as i64)
                }));
            }
        }
        out
    }

    fn samples() -> Vec<Expr> {
        let ld = |b: &str, dx| hb::load(b, ElemType::U8, dx, 0);
        vec![
            hb::add(
                hb::mul(hb::widen(ld("a", 0)), hb::bcast(6, ElemType::U16)),
                hb::widen(ld("b", 1)),
            ),
            hb::shr(hb::add(hb::widen(ld("a", -1)), hb::widen(ld("a", 1))), 3),
            hb::shl(hb::cast(ElemType::I16, ld("a", 0)), 4),
            hb::max(hb::absd(ld("a", 0), ld("b", 0)), hb::min(ld("a", 1), ld("b", 1))),
            hb::add(
                hb::add(hb::widen(ld("a", 0)), hb::widen(ld("a", 1))),
                hb::bcast(9, ElemType::U16),
            ),
            hb::mul(
                hb::widen(ld("a", 0)),
                hb::add(hb::widen(ld("b", 0)), hb::bcast(3, ElemType::U16)),
            ),
            hb::add(
                hb::mul(hb::widen(ld("a", 0)), hb::widen(ld("b", 0))),
                hb::mul(hb::widen(ld("a", 0)), hb::widen(ld("b", 1))),
            ),
            hb::mul(hb::bcast_load("w", 2, 0, ElemType::U8), ld("a", 0)),
        ]
    }

    #[test]
    fn catalog_has_at_least_ten_uniquely_named_relations() {
        let cat = catalog();
        assert!(cat.len() >= 10, "only {} relations", cat.len());
        let mut names: Vec<&str> = cat.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len(), "duplicate relation names");
    }

    #[test]
    fn relations_are_sound_on_synthetic_shapes() {
        for rel in catalog() {
            for e in samples() {
                assert_sound(&rel, &e);
            }
        }
    }

    #[test]
    fn relations_are_sound_on_all_workloads() {
        for rel in catalog() {
            for w in workloads::all() {
                for e in &w.exprs {
                    assert_sound(&rel, e);
                }
            }
        }
    }

    /// Factoring two broadcast weights must fold them into one splat:
    /// `a*3 + a*5 -> a*bcast(8)`. The general `a*(b+c)` form never
    /// lowers (multiplication wants a leaf operand), so without the fold
    /// the relation can only ever produce compile-skips.
    #[test]
    fn factor_folds_broadcast_weights_into_one_splat() {
        let factor = catalog().into_iter().find(|r| r.name == "factor").expect("catalogued");
        let wide = |b: &str| hb::widen(hb::load(b, ElemType::U8, 0, 0));
        let e = hb::add(
            hb::mul(wide("a"), hb::bcast(3, ElemType::U16)),
            hb::mul(wide("a"), hb::bcast(5, ElemType::U16)),
        );
        let applied = (factor.apply)(&e).expect("applies");
        let Expr::Binary(mul) = &applied.expr else { panic!("variant must be a mul") };
        assert_eq!(mul.op, BinOp::Mul);
        match mul.rhs.as_ref() {
            Expr::Broadcast(b) => assert_eq!(b.value, 8, "weights folded"),
            other => {
                panic!("expected a folded broadcast, got {}", halide_ir::sexpr::to_sexpr(other))
            }
        }
        assert_sound(&factor, &e);
    }

    #[test]
    fn every_relation_applies_to_some_sample() {
        let exprs: Vec<Expr> = samples()
            .into_iter()
            .chain(workloads::all().iter().flat_map(|w| w.exprs.clone()))
            .collect();
        for rel in catalog() {
            assert!(
                exprs.iter().any(|e| (rel.apply)(e).is_some()),
                "relation {} never applies",
                rel.name
            );
        }
    }

    #[test]
    fn envelope_math() {
        let e = Envelope { num: 1, den: 1, slack: 2 };
        assert!(e.allows(4, 4));
        assert!(e.allows(4, 6));
        assert!(!e.allows(4, 7));
        let l = Envelope { num: 2, den: 1, slack: 6 };
        assert!(l.allows(3, 12));
        assert!(!l.allows(3, 13));
    }

    #[test]
    fn variants_are_well_typed() {
        // Every applied variant must still type-check under the fallible
        // constructors' invariants: probe by evaluating on a tiny env.
        let mut env = Env::new();
        for name in ["a", "b", "w", "a_r", "b_r", "w_r"] {
            env.insert(Buffer2D::filled(name, ElemType::U8, 16, 4, 3));
        }
        for rel in catalog() {
            for e in samples() {
                if let Some(applied) = (rel.apply)(&e) {
                    let ctx = EvalCtx { env: &env, x0: 2, y0: 1, lanes: 4 };
                    assert!(
                        eval(&applied.expr, &ctx).is_ok(),
                        "{} built an unevaluable variant",
                        rel.name
                    );
                }
            }
        }
    }
}
