//! The conformance harness: apply relations, compile both sides,
//! compare lane-for-lane, check cost envelopes, minimize violations.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use driver::json::{self, Json};
use driver::{Driver, DriverConfig, Tier};
use halide_ir::{eval, Buffer2D, Env, EvalCtx, Expr};
use hvx::{CostModel, Program};
use lanes::rng::Rng;
use lanes::Vector;
use oracle::{gen_expr, GenConfig, Oracle};
use rake::{Rake, Target};
use synth::Verifier;

use crate::relations::{Applied, Relation};

/// Harness configuration (the `conform` binary's flags).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Base RNG seed for environments and generated expressions.
    pub seed: u64,
    /// Relation-name filter; `None` runs the whole catalog.
    pub relations: Option<Vec<String>>,
    /// Wall-clock cap; exceeding it truncates the run (reported, never
    /// silent).
    pub budget: Option<Duration>,
    /// Compile over HTTP via a running `rake-served` at this address
    /// instead of in-process.
    pub server: Option<String>,
    /// Directory for minimized repros.
    pub out: PathBuf,
    /// Number of oracle-generated expressions to sweep.
    pub generated: usize,
    /// Vector width for the generated/seeded sweep.
    pub gen_lanes: usize,
    /// Sweep only the first N workloads (`None` = all 21). For quick
    /// smokes; the nightly gate runs uncapped.
    pub workloads: Option<usize>,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            seed: oracle::fnv1a(b"RAKE"),
            relations: None,
            budget: None,
            server: None,
            out: "results/repros/conform".into(),
            generated: 12,
            gen_lanes: 8,
            workloads: None,
        }
    }
}

/// Per-relation tallies.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelationStats {
    /// Pairs where the relation applied and both sides compiled.
    pub applied: usize,
    /// Expressions the relation did not apply to (or a side failed to
    /// compile).
    pub skipped: usize,
    /// Pairs with a lane mismatch (each minimized into a repro).
    pub violations: usize,
    /// Pairs whose variant cost left the declared envelope.
    pub cost_violations: usize,
}

/// What a conformance run concluded.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Expressions swept (workloads + generated + seeded).
    pub exprs: usize,
    /// (Relation, expression) pairs fully checked.
    pub pairs: usize,
    /// (env, origin) points compared across all pairs.
    pub points: usize,
    /// Pairs with a lane-for-lane output mismatch.
    pub violations: usize,
    /// Pairs outside their cost envelope.
    pub cost_violations: usize,
    /// Relation applications where the *interpreter* disagreed with
    /// itself — a catalog bug, reported separately from compiler bugs.
    pub unsound: usize,
    /// Pairs skipped because a side failed to compile.
    pub skipped_pairs: usize,
    /// Whether the wall-clock budget truncated the sweep.
    pub truncated: bool,
    /// Per-relation tallies, keyed by relation name.
    pub per_relation: BTreeMap<String, RelationStats>,
    /// Minimized repro artifacts written this run.
    pub repros: Vec<PathBuf>,
}

impl Summary {
    /// Whether the run found no compiler or catalog misbehavior.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.cost_violations == 0 && self.unsound == 0
    }
}

/// One compiled side of a pair.
struct Side {
    program: Program,
    tier: Tier,
}

/// Compilation backend: in-process drivers (one per lane width, sharing
/// a warm canonicalizing cache across relations) or a remote
/// `rake-served` instance.
enum Backend {
    Local { ctxs: HashMap<usize, LocalCtx> },
    Server { addr: String },
}

struct LocalCtx {
    driver: Driver,
}

fn base_rake(lanes: usize) -> Rake {
    Rake::new(Target::hvx_small(lanes)).with_verifier(Verifier {
        lanes,
        vec_bytes: lanes,
        ..Verifier::fast()
    })
}

impl Backend {
    fn local_ctx(&mut self, lanes: usize) -> Option<&LocalCtx> {
        match self {
            Backend::Local { ctxs } => Some(ctxs.entry(lanes).or_insert_with(|| {
                let driver = Driver::new(base_rake(lanes)).with_config(DriverConfig {
                    workers: 2,
                    job_timeout: Some(Duration::from_secs(60)),
                    validate: false,
                    ..DriverConfig::default()
                });
                LocalCtx { driver }
            })),
            Backend::Server { .. } => None,
        }
    }

    /// Compile a batch of labeled expressions at one width. Entries that
    /// fail to produce any runnable program come back `None`.
    fn compile(&mut self, batch: &[(String, Expr)], lanes: usize) -> io::Result<Vec<Option<Side>>> {
        let sides = match self {
            Backend::Local { .. } => {
                let ctx = self.local_ctx(lanes).expect("local backend");
                let report = ctx.driver.compile_batch_named(batch.to_vec());
                report
                    .results
                    .iter()
                    .map(|r| r.program().map(|p| Side { program: p.clone(), tier: r.tier }))
                    .collect()
            }
            Backend::Server { addr } => server_compile(addr, batch, lanes)?,
        };
        for side in sides.iter().flatten() {
            synth::coverage::record_program(&side.program);
        }
        Ok(sides)
    }
}

/// POST the batch to `rake-served` and rematerialize runnable programs
/// from the returned HVX S-expressions.
fn server_compile(
    addr: &str,
    batch: &[(String, Expr)],
    lanes: usize,
) -> io::Result<Vec<Option<Side>>> {
    let exprs: Vec<Json> =
        batch.iter().map(|(_, e)| Json::Str(halide_ir::sexpr::to_sexpr(e))).collect();
    let body = Json::obj([("exprs", Json::Arr(exprs)), ("lanes", lanes.into())]).to_string();
    let mut stream = TcpStream::connect(addr)?;
    let (status, reply) =
        served::http::roundtrip(&mut stream, "POST", "/compile", Some(body.as_bytes()))?;
    if status != 200 {
        return Err(io::Error::other(format!(
            "server returned {status}: {}",
            String::from_utf8_lossy(&reply)
        )));
    }
    let text =
        std::str::from_utf8(&reply).map_err(|_| io::Error::other("non-UTF-8 compile response"))?;
    let doc = json::parse(text).map_err(|e| io::Error::other(format!("bad response: {e}")))?;
    let results = doc
        .get("results")
        .and_then(|r| r.as_arr())
        .ok_or_else(|| io::Error::other("response missing `results`"))?;
    Ok(results.iter().map(parse_side).collect())
}

fn parse_side(r: &Json) -> Option<Side> {
    if r.get("outcome")?.as_str()? != "compiled" {
        return None;
    }
    let hvx_expr = hvx::sexpr::parse(r.get("hvx")?.as_str()?).ok()?;
    let tier =
        r.get("tier").and_then(|t| t.as_str()).and_then(Tier::from_name).unwrap_or(Tier::Full);
    Some(Side { program: hvx_expr.to_program(), tier })
}

/// Rebuild the environment a transformed variant must be evaluated in:
/// the base environment with each renamed buffer duplicated under its
/// new name (contents identical).
pub fn variant_env(env: &Env, applied: &Applied) -> Env {
    if applied.renames.is_empty() {
        return env.clone();
    }
    let mut out = env.clone();
    for (old, new) in &applied.renames {
        if let Some(b) = env.get(old) {
            out.insert(Buffer2D::from_fn(new, b.elem(), b.width(), b.height(), |x, y| {
                b.get(x as i64, y as i64)
            }));
        }
    }
    out
}

/// Expressions hand-seeded toward lifting rules the workload corpus
/// under-exercises (minima, absolute differences, rounding averages,
/// clamp stripping, deepened narrows) — the coverage report's feedback
/// loop made concrete.
pub fn seed_corpus() -> Vec<(String, Expr)> {
    use halide_ir::builder as hb;
    use lanes::ElemType;
    let ld = |b: &str, dx: i32| hb::load(b, ElemType::U8, dx, 0);
    let wide = |b: &str, dx: i32| hb::widen(hb::load(b, ElemType::U8, dx, 0));
    vec![
        (
            "seed_minmax".to_owned(),
            hb::min(hb::max(ld("a", 0), ld("b", 0)), hb::max(ld("a", 1), ld("b", 1))),
        ),
        ("seed_absd".to_owned(), hb::max(hb::absd(ld("a", 0), ld("a", 1)), ld("b", 0))),
        (
            "seed_average".to_owned(),
            hb::shr(hb::add(hb::add(wide("a", 0), wide("b", 0)), hb::bcast(1, ElemType::U16)), 1),
        ),
        (
            "seed_clamp".to_owned(),
            hb::cast(ElemType::U8, hb::clamp(hb::add(wide("a", 0), wide("a", 1)), 0, 255)),
        ),
        ("seed_vvmpy".to_owned(), hb::mul(wide("a", 0), wide("b", 0))),
        ("seed_scalar".to_owned(), hb::mul(hb::bcast_load("w", 2, 0, ElemType::U8), ld("a", 0))),
        (
            "seed_shl_weight".to_owned(),
            hb::add(hb::shl(hb::cast(ElemType::I16, ld("a", 0)), 6), hb::bcast(-64, ElemType::I16)),
        ),
        (
            "seed_narrow_deepen".to_owned(),
            hb::shr(hb::cast(ElemType::U8, hb::shr(hb::add(wide("a", 0), wide("a", 1)), 2)), 1),
        ),
        (
            "seed_rounding".to_owned(),
            hb::cast(
                ElemType::U8,
                hb::shr(
                    hb::add(
                        hb::add(
                            hb::add(
                                wide("a", -1),
                                hb::mul(wide("a", 0), hb::bcast(2, ElemType::U16)),
                            ),
                            wide("a", 1),
                        ),
                        hb::bcast(8, ElemType::U16),
                    ),
                    4,
                ),
            ),
        ),
        (
            "seed_widen_identity".to_owned(),
            hb::add(hb::cast(ElemType::U8, hb::widen(ld("a", 0))), ld("a", 1)),
        ),
        // A sum of products sharing a multiplicand: the only shape the
        // `factor` relation applies to, absent from the paper workloads.
        (
            "seed_factor".to_owned(),
            hb::add(
                hb::mul(wide("a", 0), hb::bcast(3, ElemType::U16)),
                hb::mul(wide("a", 0), hb::bcast(5, ElemType::U16)),
            ),
        ),
        // A two-tap dot product: an Add over two vector-vector multiplies,
        // each lifting to a non-saturating vv-mpy-add, so the Add merges
        // their pair lists (`add.vvmpy-merge`). The paper workloads reach
        // vv-mpy only through single products.
        (
            "seed_vvmpy_merge".to_owned(),
            hb::add(
                hb::mul(wide("a", 0), wide("b", 0)),
                hb::mul(wide("a", 1), wide("b", 1)),
            ),
        ),
    ]
}

/// A minimizer subject compiling each candidate through a tier-pinned
/// selector, memoized by S-expression (the minimizer re-invokes the
/// subject per shrink candidate).
struct PinnedSubject {
    rake: Rake,
    programs: RefCell<HashMap<String, Option<Program>>>,
}

impl PinnedSubject {
    /// Pin the selector at the tier that produced the failing program —
    /// the original tier floor travels through minimization, so a
    /// tier-dependent miscompile does not vanish when the subject
    /// recompiles (the PR-2 minimizer's contract).
    fn new(lanes: usize, tier: Tier) -> PinnedSubject {
        PinnedSubject {
            rake: tier.apply(&base_rake(lanes)),
            programs: RefCell::new(HashMap::new()),
        }
    }

    fn run(&self, e: &Expr, env: &Env, x0: i64, y0: i64, lanes: usize) -> Option<Vector> {
        let key = halide_ir::sexpr::to_sexpr(e);
        let mut programs = self.programs.borrow_mut();
        let program = programs
            .entry(key)
            .or_insert_with(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.rake.compile(e)))
                    .ok()
                    .and_then(|r| r.ok())
                    .map(|c| c.program)
            })
            .as_ref()?;
        program.run(env, x0, y0, lanes).ok().map(|v| v.typed_lanes(e.ty()))
    }
}

/// Run the full conformance sweep.
///
/// # Errors
///
/// Propagates server I/O failures (`--via-server` mode) and repro
/// emission failures; compiler misbehavior is reported in the
/// [`Summary`], not as an error.
pub fn run(cfg: &HarnessConfig) -> io::Result<Summary> {
    synth::coverage::reset();
    let rels: Vec<Relation> = crate::relations::catalog()
        .into_iter()
        .filter(|r| cfg.relations.as_ref().is_none_or(|f| f.iter().any(|n| n == r.name)))
        .collect();
    let mut backend = match &cfg.server {
        Some(addr) => Backend::Server { addr: addr.clone() },
        None => Backend::Local { ctxs: HashMap::new() },
    };
    let mut summary = Summary::default();
    for r in &rels {
        summary.per_relation.insert(r.name.to_owned(), RelationStats::default());
    }
    let t0 = Instant::now();
    let over_budget = |t0: Instant| cfg.budget.is_some_and(|b| t0.elapsed() > b);

    // Phase 1: the 21 paper workloads at quick-scaled widths.
    let sweep: Vec<_> = workloads::all();
    let cap = cfg.workloads.unwrap_or(sweep.len());
    if cap < sweep.len() {
        // Never truncate silently: a capped smoke says so.
        eprintln!("conform: sweeping {cap} of {} workloads (--workloads)", sweep.len());
    }
    for w in sweep.into_iter().take(cap) {
        if over_budget(t0) {
            summary.truncated = true;
            break;
        }
        let mut lanes = (16 * w.lanes / 128).max(4);
        if cfg.server.is_some() {
            lanes = lanes.max(8); // the server rejects sub-HVX widths
        }
        for (i, e) in w.exprs.iter().enumerate() {
            let label = format!("{}_{i}", w.name);
            check_expr(&mut backend, &rels, &label, e, lanes, cfg, &mut summary)?;
        }
    }

    // Phase 2: oracle-generated expressions plus the coverage-seeded
    // corpus, at the configured width.
    let mut lanes = cfg.gen_lanes;
    if cfg.server.is_some() {
        lanes = lanes.max(8);
    }
    let gen_cfg = GenConfig { max_nodes: 14, ..GenConfig::default() };
    let mut rng = Rng::seed_from_u64(cfg.seed);
    for case in 0..cfg.generated {
        if over_budget(t0) {
            summary.truncated = true;
            break;
        }
        let e = gen_expr(&mut rng, &gen_cfg);
        check_expr(&mut backend, &rels, &format!("gen_{case}"), &e, lanes, cfg, &mut summary)?;
    }
    for (name, e) in seed_corpus() {
        if over_budget(t0) {
            summary.truncated = true;
            break;
        }
        check_expr(&mut backend, &rels, &name, &e, lanes, cfg, &mut summary)?;
    }
    Ok(summary)
}

/// Check one expression against every relation.
#[allow(clippy::too_many_arguments)]
fn check_expr(
    backend: &mut Backend,
    rels: &[Relation],
    label: &str,
    e: &Expr,
    lanes: usize,
    cfg: &HarnessConfig,
    summary: &mut Summary,
) -> io::Result<()> {
    summary.exprs += 1;
    let oracle = Oracle { lanes, width: lanes + 24, seed: cfg.seed, ..Oracle::default() };
    let cost_model = CostModel::new(lanes, lanes);

    // Compile the base and every applicable variant in one batch: the
    // shared driver cache then serves structural re-canonicalizations
    // (commute, alpha-rename) without re-synthesis — which is itself the
    // end-to-end test of cache canonicalization.
    let mut applications: Vec<(usize, Applied)> = Vec::new();
    let mut batch: Vec<(String, Expr)> = vec![(format!("{label}:base"), e.clone())];
    for (ri, rel) in rels.iter().enumerate() {
        match (rel.apply)(e) {
            Some(applied) => {
                batch.push((format!("{label}:{}", rel.name), applied.expr.clone()));
                applications.push((ri, applied));
            }
            None => summary.per_relation.get_mut(rel.name).expect("seeded").skipped += 1,
        }
    }
    if applications.is_empty() {
        // Nothing to differ against this expression; don't burn a base
        // compile (matters for `--relations` filtered runs).
        return Ok(());
    }
    let mut sides = backend.compile(&batch, lanes)?;
    let base = match sides.remove(0) {
        Some(base) => base,
        None => {
            // Nothing to differ against: the whole expression is skipped.
            for (ri, _) in &applications {
                summary.per_relation.get_mut(rels[*ri].name).expect("seeded").skipped += 1;
                summary.skipped_pairs += 1;
            }
            return Ok(());
        }
    };
    let base_cost = cost_model.cost(&base.program).0;
    let envs = oracle.envs_for(e);

    for ((ri, applied), side) in applications.into_iter().zip(sides) {
        let rel = &rels[ri];
        let stats = summary.per_relation.get_mut(rel.name).expect("seeded");
        let Some(var) = side else {
            stats.skipped += 1;
            summary.skipped_pairs += 1;
            continue;
        };
        stats.applied += 1;
        summary.pairs += 1;

        // Cost envelope first: cheap, and independent of execution.
        let var_cost = cost_model.cost(&var.program).0;
        if !rel.envelope.allows(base_cost, var_cost) {
            stats.cost_violations += 1;
            summary.cost_violations += 1;
            eprintln!(
                "COST {label}/{}: base {base_cost} -> variant {var_cost} exceeds envelope \
                 ({}x/{} + {})",
                rel.name, rel.envelope.num, rel.envelope.den, rel.envelope.slack
            );
        }

        // Lane-for-lane equality over adversarial environments.
        let mut violation: Option<(Expr, Env, i64, i64, Tier)> = None;
        'points: for env in &envs {
            let var_env = variant_env(env, &applied);
            for &(x0, y0) in &oracle.origins {
                let ctx = EvalCtx { env, x0, y0, lanes };
                let Ok(want) = eval(e, &ctx) else { continue };
                let vctx = EvalCtx { env: &var_env, x0: x0 + applied.origin_dx, y0, lanes };
                let Ok(want_var) = eval(&applied.expr, &vctx) else { continue };
                if oracle::first_mismatch(&want, &want_var).is_some() {
                    // The interpreter itself disagrees: the relation (not
                    // the compiler) is broken. Report loudly; do not
                    // charge the compiler.
                    summary.unsound += 1;
                    eprintln!("UNSOUND RELATION {}: interpreter disagrees on {label}", rel.name);
                    break 'points;
                }
                summary.points += 1;
                let base_out =
                    base.program.run(env, x0, y0, lanes).ok().map(|v| v.typed_lanes(e.ty()));
                let var_out = var
                    .program
                    .run(&var_env, x0 + applied.origin_dx, y0, lanes)
                    .ok()
                    .map(|v| v.typed_lanes(applied.expr.ty()));
                // Attribute the mismatch to the side that disagrees with
                // ground truth so the minimizer shrinks the right program.
                let base_bad =
                    base_out.as_ref().is_some_and(|o| oracle::first_mismatch(&want, o).is_some());
                let var_bad = var_out
                    .as_ref()
                    .is_some_and(|o| oracle::first_mismatch(&want_var, o).is_some());
                if base_bad || var_bad {
                    let (expr, env, x0, tier) = if var_bad {
                        (applied.expr.clone(), var_env.clone(), x0 + applied.origin_dx, var.tier)
                    } else {
                        (e.clone(), env.clone(), x0, base.tier)
                    };
                    violation = Some((expr, env, x0, y0, tier));
                    break 'points;
                }
            }
        }

        if let Some((expr, env, x0, y0, tier)) = violation {
            stats.violations += 1;
            summary.violations += 1;
            eprintln!("VIOLATION {label}/{}: minimizing", rel.name);
            let subject = PinnedSubject::new(lanes, tier);
            let run_subject =
                |e: &Expr, env: &Env, x0: i64, y0: i64, l: usize| subject.run(e, env, x0, y0, l);
            let repro = oracle::minimize(&expr, &env, x0, y0, lanes, &run_subject);
            let tag = sanitize(&format!("{label}_{}", rel.name));
            match oracle::emit(&cfg.out, &tag, &repro) {
                Ok(paths) => {
                    eprintln!("  repro: {}", paths.test.display());
                    summary.repros.push(paths.test);
                }
                Err(err) => eprintln!("  failed to write repro: {err}"),
            }
        }
    }
    Ok(())
}

fn sanitize(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use lanes::ElemType;

    #[test]
    fn variant_env_duplicates_renamed_buffers() {
        let mut env = Env::new();
        env.insert(Buffer2D::filled("a", ElemType::U8, 8, 2, 7));
        let applied = Applied {
            expr: hb::load("a_r", ElemType::U8, 0, 0),
            origin_dx: 0,
            renames: vec![("a".to_owned(), "a_r".to_owned())],
        };
        let out = variant_env(&env, &applied);
        assert_eq!(out.get("a_r").expect("renamed buffer").get(3, 1), 7);
        assert!(out.get("a").is_some(), "original stays available");
    }

    #[test]
    fn seed_corpus_expressions_are_evaluable() {
        let mut env = Env::new();
        for name in ["a", "b", "w"] {
            env.insert(Buffer2D::filled(name, ElemType::U8, 16, 4, 9));
        }
        for (name, e) in seed_corpus() {
            let ctx = EvalCtx { env: &env, x0: 1, y0: 1, lanes: 4 };
            assert!(eval(&e, &ctx).is_ok(), "{name} does not evaluate");
        }
    }

    /// The seed corpus exists to reach relations the workloads miss;
    /// `factor` in particular must fire on `seed_factor`, or the catalog
    /// entry is dead weight.
    #[test]
    fn factor_applies_to_the_seeded_sum_of_products() {
        let factor = crate::relations::catalog()
            .into_iter()
            .find(|r| r.name == "factor")
            .expect("factor is catalogued");
        let (_, e) = seed_corpus()
            .into_iter()
            .find(|(name, _)| name == "seed_factor")
            .expect("seed_factor is seeded");
        let applied = (factor.apply)(&e).expect("factor must apply to seed_factor");
        let mut env = Env::new();
        env.insert(Buffer2D::filled("a", ElemType::U8, 16, 4, 9));
        let ctx = EvalCtx { env: &env, x0: 1, y0: 1, lanes: 4 };
        assert_eq!(
            eval(&e, &ctx).expect("base evaluates"),
            eval(&applied.expr, &ctx).expect("variant evaluates"),
            "factor must preserve semantics on seed_factor"
        );
    }

    /// A tiny end-to-end sweep: one seeded expression, two relations,
    /// local backend — must be clean and must count coverage.
    #[test]
    fn mini_sweep_is_clean() {
        let cfg = HarnessConfig {
            relations: Some(vec!["commute".to_owned(), "identity-pad".to_owned()]),
            generated: 0,
            ..HarnessConfig::default()
        };
        let mut backend = Backend::Local { ctxs: HashMap::new() };
        let rels: Vec<Relation> = crate::relations::catalog()
            .into_iter()
            .filter(|r| cfg.relations.as_ref().unwrap().iter().any(|n| n == r.name))
            .collect();
        let mut summary = Summary::default();
        for r in &rels {
            summary.per_relation.insert(r.name.to_owned(), RelationStats::default());
        }
        let e = seed_corpus().remove(0).1;
        check_expr(&mut backend, &rels, "mini", &e, 4, &cfg, &mut summary).expect("local sweep");
        assert!(summary.clean(), "violations: {summary:?}");
        assert!(summary.pairs >= 1);
        assert!(summary.points > 0);
        let rules: u64 = synth::coverage::rule_counts().iter().map(|(_, n)| n).sum();
        assert!(rules > 0, "coverage counters must fire under the coverage feature");
    }
}
