//! # rake-conform — metamorphic + differential conformance harness
//!
//! Point checks (the oracle's random expressions, the workloads' golden
//! outputs) leave whole bug classes unprobed: rewrites that are
//! individually verified but compose incorrectly, cost regressions, and
//! cache/tier interactions. This crate closes that gap with *metamorphic
//! relations*: semantics-preserving Halide-IR transformations
//! ([`relations`]) under which the compiled HVX output must stay
//! lane-for-lane identical and the cost must stay inside a declared
//! envelope.
//!
//! The harness ([`harness`]) applies the catalog to the 21 paper
//! workloads plus oracle-generated and coverage-seeded expressions,
//! compiles both sides of every pair through the driver service layer
//! (or over HTTP via `rake-served`), executes them on adversarial
//! environments, and delta-debugs any violation into a self-contained
//! repro under `results/repros/conform/`.
//!
//! A coverage layer (`synth::coverage`, enabled here via the `coverage`
//! feature) counts lifting-rule firings and emitted HVX opcodes so each
//! run can report which parts of the uber-IR rule space the corpus never
//! reached ([`report`]); gaps drive the seeded corpus.

pub mod harness;
pub mod relations;
pub mod report;

pub use harness::{run, HarnessConfig, RelationStats, Summary};
pub use relations::{catalog, Applied, Envelope, Relation};
pub use report::{coverage_report, waivers, Waiver, WaiverKind};
