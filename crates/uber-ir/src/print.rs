//! S-expression printing in the paper's Figure-5 style.

use std::fmt;

use crate::expr::{ScalarSource, UberExpr};

impl fmt::Display for ScalarSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarSource::Imm(v) => write!(f, "{v}"),
            ScalarSource::Scalar { buffer, x, dy } => write!(f, "{buffer}[{x}, y+{dy}]"),
        }
    }
}

fn go(e: &UberExpr, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match e {
        UberExpr::Data(l) => {
            writeln!(f, "{pad}(load-data {} x{:+} y{:+} {})", l.buffer, l.dx, l.dy, l.ty)
        }
        UberExpr::Bcast { value, ty } => writeln!(f, "{pad}(broadcast {value} {ty})"),
        UberExpr::VsMpyAdd(v) => {
            writeln!(
                f,
                "{pad}(vs-mpy-add [kernel: {:?}] [saturating: {}] [output-type: {}]",
                v.kernel, v.saturating, v.out
            )?;
            for i in &v.inputs {
                go(i, indent + 1, f)?;
            }
            writeln!(f, "{pad})")
        }
        UberExpr::VvMpyAdd(v) => {
            writeln!(
                f,
                "{pad}(vv-mpy-add [saturating: {}] [output-type: {}]",
                v.saturating, v.out
            )?;
            for (a, b) in &v.pairs {
                go(a, indent + 1, f)?;
                go(b, indent + 1, f)?;
            }
            writeln!(f, "{pad})")
        }
        UberExpr::AbsDiff(a, b) => nest(f, indent, "abs-diff", &[a, b]),
        UberExpr::Min(a, b) => nest(f, indent, "min", &[a, b]),
        UberExpr::Max(a, b) => nest(f, indent, "max", &[a, b]),
        UberExpr::Average { a, b, round } => {
            let name = if *round { "average:rnd" } else { "average" };
            nest(f, indent, name, &[a, b])
        }
        UberExpr::Narrow { arg, shift, round, saturating, out } => {
            writeln!(
                f,
                "{pad}(narrow [shift: {shift}] [round: {round}] [saturating: {saturating}] [output-type: {out}]"
            )?;
            go(arg, indent + 1, f)?;
            writeln!(f, "{pad})")
        }
        UberExpr::Widen { arg, out } => {
            writeln!(f, "{pad}(widen [output-type: {out}]")?;
            go(arg, indent + 1, f)?;
            writeln!(f, "{pad})")
        }
        UberExpr::Shl { arg, amount } => {
            writeln!(f, "{pad}(shl [amount: {amount}]")?;
            go(arg, indent + 1, f)?;
            writeln!(f, "{pad})")
        }
    }
}

fn nest(
    f: &mut fmt::Formatter<'_>,
    indent: usize,
    name: &str,
    args: &[&UberExpr],
) -> fmt::Result {
    let pad = "  ".repeat(indent);
    writeln!(f, "{pad}({name}")?;
    for a in args {
        go(a, indent + 1, f)?;
    }
    writeln!(f, "{pad})")
}

impl fmt::Display for UberExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        go(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::expr::UberExpr;
    use lanes::ElemType;

    #[test]
    fn figure5_style() {
        let e = UberExpr::conv("input", ElemType::U8, -1, -1, &[1, 2, 1], ElemType::U16);
        let s = e.to_string();
        assert!(s.contains("vs-mpy-add"));
        assert!(s.contains("[kernel: [1, 2, 1]]"));
        assert!(s.contains("load-data input x-1 y-1"));
    }

    #[test]
    fn narrow_prints_flags() {
        let e = UberExpr::Narrow {
            arg: Box::new(UberExpr::conv("in", ElemType::U8, 0, 0, &[1], ElemType::U16)),
            shift: 4,
            round: true,
            saturating: true,
            out: ElemType::U8,
        };
        let s = e.to_string();
        assert!(s.contains("(narrow [shift: 4] [round: true] [saturating: true] [output-type: u8]"));
    }
}
