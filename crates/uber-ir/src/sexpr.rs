//! S-expression serialization of the Uber-Instruction IR.
//!
//! The paper's toolchain passes the synthesizer's intermediate results
//! between processes as S-expressions (§6). This is the Uber-IR side of
//! that bridge: a canonical machine-readable form (distinct from the
//! pretty [`std::fmt::Display`] rendering of Figure 5) with an exact
//! round-tripping parser.
//!
//! # Grammar
//!
//! ```text
//! expr   := (data <buffer> <ty> <dx> <dy>)
//!         | (bcast <scalar> <ty>)
//!         | (vs-mpy-add <sat?> <ty> (<w> expr)...)
//!         | (vv-mpy-add <sat?> <ty> (expr expr)...)
//!         | (abs-diff expr expr) | (min expr expr) | (max expr expr)
//!         | (avg <round?> expr expr)
//!         | (narrow <shift> <round?> <sat?> <ty> expr)
//!         | (widen <ty> expr)
//!         | (shl <n> expr)
//! scalar := <int> | (scal <buffer> <x> <dy>)
//! flag   := #t | #f
//! ```

use std::fmt;

use halide_ir::Load;
use lanes::ElemType;

use crate::expr::{ScalarSource, UberExpr, VsMpyAdd, VvMpyAdd};

/// Serialize to the canonical S-expression.
pub fn to_sexpr(e: &UberExpr) -> String {
    let mut s = String::new();
    write_expr(e, &mut s);
    s
}

fn flag(b: bool) -> &'static str {
    if b {
        "#t"
    } else {
        "#f"
    }
}

fn write_expr(e: &UberExpr, out: &mut String) {
    use std::fmt::Write;
    match e {
        UberExpr::Data(l) => {
            let _ = write!(out, "(data {} {} {} {})", l.buffer, l.ty, l.dx, l.dy);
        }
        UberExpr::Bcast { value, ty } => {
            let _ = match value {
                ScalarSource::Imm(v) => write!(out, "(bcast {v} {ty})"),
                ScalarSource::Scalar { buffer, x, dy } => {
                    write!(out, "(bcast (scal {buffer} {x} {dy}) {ty})")
                }
            };
        }
        UberExpr::VsMpyAdd(v) => {
            let _ = write!(out, "(vs-mpy-add {} {}", flag(v.saturating), v.out);
            for (input, w) in v.inputs.iter().zip(&v.kernel) {
                let _ = write!(out, " ({w} ");
                write_expr(input, out);
                out.push(')');
            }
            out.push(')');
        }
        UberExpr::VvMpyAdd(v) => {
            let _ = write!(out, "(vv-mpy-add {} {}", flag(v.saturating), v.out);
            for (a, b) in &v.pairs {
                out.push_str(" (");
                write_expr(a, out);
                out.push(' ');
                write_expr(b, out);
                out.push(')');
            }
            out.push(')');
        }
        UberExpr::AbsDiff(a, b) => write_call(out, "abs-diff", &[a, b]),
        UberExpr::Min(a, b) => write_call(out, "min", &[a, b]),
        UberExpr::Max(a, b) => write_call(out, "max", &[a, b]),
        UberExpr::Average { a, b, round } => {
            let _ = write!(out, "(avg {} ", flag(*round));
            write_expr(a, out);
            out.push(' ');
            write_expr(b, out);
            out.push(')');
        }
        UberExpr::Narrow { arg, shift, round, saturating, out: oty } => {
            let _ = write!(out, "(narrow {shift} {} {} {oty} ", flag(*round), flag(*saturating));
            write_expr(arg, out);
            out.push(')');
        }
        UberExpr::Widen { arg, out: oty } => {
            let _ = write!(out, "(widen {oty} ");
            write_expr(arg, out);
            out.push(')');
        }
        UberExpr::Shl { arg, amount } => {
            let _ = write!(out, "(shl {amount} ");
            write_expr(arg, out);
            out.push(')');
        }
    }
}

fn write_call(out: &mut String, head: &str, args: &[&UberExpr]) {
    out.push('(');
    out.push_str(head);
    for a in args {
        out.push(' ');
        write_expr(a, out);
    }
    out.push(')');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct P<'s> {
    input: &'s str,
    pos: usize,
}

impl<'s> P<'s> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len()
            && self.input.as_bytes()[self.pos].is_ascii_whitespace()
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.input.as_bytes().get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", c as char))
        }
    }

    fn peek_open(&mut self) -> bool {
        self.skip_ws();
        self.input.as_bytes().get(self.pos) == Some(&b'(')
    }

    fn atom(&mut self) -> Result<&'s str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input.as_bytes()[self.pos];
            if b.is_ascii_whitespace() || b == b'(' || b == b')' {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected atom");
        }
        Ok(&self.input[start..self.pos])
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let a = self.atom()?;
        a.parse().map_err(|_| ParseError {
            offset: self.pos,
            message: format!("expected integer, got `{a}`"),
        })
    }

    fn flag(&mut self) -> Result<bool, ParseError> {
        match self.atom()? {
            "#t" => Ok(true),
            "#f" => Ok(false),
            other => self.err(format!("expected #t or #f, got `{other}`")),
        }
    }

    fn ty(&mut self) -> Result<ElemType, ParseError> {
        let a = self.atom()?;
        ElemType::ALL.into_iter().find(|t| t.name() == a).ok_or(ParseError {
            offset: self.pos,
            message: format!("unknown element type `{a}`"),
        })
    }

    fn expr(&mut self) -> Result<UberExpr, ParseError> {
        self.eat(b'(')?;
        let head = self.atom()?.to_owned();
        let e = match head.as_str() {
            "data" => {
                let buffer = self.atom()?.to_owned();
                let ty = self.ty()?;
                let dx = self.int()? as i32;
                let dy = self.int()? as i32;
                UberExpr::Data(Load { buffer, dx, dy, ty })
            }
            "bcast" => {
                let value = if self.peek_open() {
                    self.eat(b'(')?;
                    let tag = self.atom()?;
                    if tag != "scal" {
                        return self.err(format!("expected `scal`, got `{tag}`"));
                    }
                    let buffer = self.atom()?.to_owned();
                    let x = self.int()? as i32;
                    let dy = self.int()? as i32;
                    self.eat(b')')?;
                    ScalarSource::Scalar { buffer, x, dy }
                } else {
                    ScalarSource::Imm(self.int()?)
                };
                let ty = self.ty()?;
                UberExpr::Bcast { value, ty }
            }
            "vs-mpy-add" => {
                let saturating = self.flag()?;
                let out = self.ty()?;
                let mut inputs = Vec::new();
                let mut kernel = Vec::new();
                while self.peek_open() {
                    self.eat(b'(')?;
                    kernel.push(self.int()?);
                    inputs.push(self.expr()?);
                    self.eat(b')')?;
                }
                UberExpr::VsMpyAdd(VsMpyAdd { inputs, kernel, saturating, out })
            }
            "vv-mpy-add" => {
                let saturating = self.flag()?;
                let out = self.ty()?;
                let mut pairs = Vec::new();
                while self.peek_open() {
                    self.eat(b'(')?;
                    let a = self.expr()?;
                    let b = self.expr()?;
                    self.eat(b')')?;
                    pairs.push((a, b));
                }
                UberExpr::VvMpyAdd(VvMpyAdd { pairs, saturating, out })
            }
            "abs-diff" | "min" | "max" => {
                let a = Box::new(self.expr()?);
                let b = Box::new(self.expr()?);
                match head.as_str() {
                    "abs-diff" => UberExpr::AbsDiff(a, b),
                    "min" => UberExpr::Min(a, b),
                    _ => UberExpr::Max(a, b),
                }
            }
            "avg" => {
                let round = self.flag()?;
                let a = Box::new(self.expr()?);
                let b = Box::new(self.expr()?);
                UberExpr::Average { a, b, round }
            }
            "narrow" => {
                let shift = self.int()? as u32;
                let round = self.flag()?;
                let saturating = self.flag()?;
                let out = self.ty()?;
                let arg = Box::new(self.expr()?);
                UberExpr::Narrow { arg, shift, round, saturating, out }
            }
            "widen" => {
                let out = self.ty()?;
                let arg = Box::new(self.expr()?);
                UberExpr::Widen { arg, out }
            }
            "shl" => {
                let amount = self.int()? as u32;
                let arg = Box::new(self.expr()?);
                UberExpr::Shl { arg, amount }
            }
            other => return self.err(format!("unknown uber-instruction `{other}`")),
        };
        self.eat(b')')?;
        Ok(e)
    }
}

/// Parse a canonical Uber-IR S-expression.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<UberExpr, ParseError> {
    let mut p = P { input, pos: 0 };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != input.len() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lanes::ElemType::{I16, U16, U8};

    fn roundtrip(e: &UberExpr) {
        let text = to_sexpr(e);
        let back = parse(&text).unwrap_or_else(|err| panic!("reparse `{text}`: {err}"));
        assert_eq!(&back, e, "round-trip failed for `{text}`");
    }

    fn d(dx: i32) -> UberExpr {
        UberExpr::Data(Load { buffer: "in".into(), dx, dy: 0, ty: U8 })
    }

    #[test]
    fn roundtrips_every_node_kind() {
        roundtrip(&d(-2));
        roundtrip(&UberExpr::Bcast { value: ScalarSource::Imm(-5), ty: I16 });
        roundtrip(&UberExpr::Bcast {
            value: ScalarSource::Scalar { buffer: "w".into(), x: 3, dy: -1 },
            ty: U8,
        });
        roundtrip(&UberExpr::conv("in", U8, -1, 0, &[1, 2, 1], U16));
        roundtrip(&UberExpr::VvMpyAdd(VvMpyAdd {
            pairs: vec![(d(0), d(1)), (d(2), d(3))],
            saturating: false,
            out: U16,
        }));
        roundtrip(&UberExpr::AbsDiff(Box::new(d(0)), Box::new(d(1))));
        roundtrip(&UberExpr::Min(Box::new(d(0)), Box::new(d(1))));
        roundtrip(&UberExpr::Max(Box::new(d(0)), Box::new(d(1))));
        roundtrip(&UberExpr::Average { a: Box::new(d(0)), b: Box::new(d(1)), round: true });
        roundtrip(&UberExpr::Narrow {
            arg: Box::new(UberExpr::conv("in", U8, 0, 0, &[1, 1], U16)),
            shift: 4,
            round: true,
            saturating: true,
            out: U8,
        });
        roundtrip(&UberExpr::Widen { arg: Box::new(d(0)), out: U16 });
        roundtrip(&UberExpr::Shl {
            arg: Box::new(UberExpr::conv("in", U8, 0, 0, &[1], U16)),
            amount: 3,
        });
    }

    #[test]
    fn canonical_form_is_stable() {
        let e = UberExpr::conv("in", U8, -1, 0, &[1, 2, 1], U16);
        assert_eq!(
            to_sexpr(&e),
            "(vs-mpy-add #f u16 (1 (data in u8 -1 0)) (2 (data in u8 0 0)) (1 (data in u8 1 0)))"
        );
    }

    #[test]
    fn errors_are_located() {
        let err = parse("(frob 1)").unwrap_err();
        assert!(err.message.contains("unknown uber-instruction"));
        let err = parse("(narrow 4 #t maybe u8 (data in u8 0 0))").unwrap_err();
        assert!(err.message.contains("expected #t or #f"));
        let err = parse("(data in u8 0 0) junk").unwrap_err();
        assert!(err.message.contains("trailing input"));
        assert!(parse("(data in u8 0").is_err());
    }

    #[test]
    fn nested_deep_roundtrip() {
        // The full sobel-like shape: narrow(sat) of min of adds of absdiffs.
        let row = UberExpr::conv("in", U8, -1, -1, &[1, 2, 1], U16);
        let col = UberExpr::conv("in", U8, -1, 1, &[1, 2, 1], U16);
        let sum = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![
                UberExpr::AbsDiff(Box::new(row.clone()), Box::new(col.clone())),
                UberExpr::AbsDiff(Box::new(col), Box::new(row)),
            ],
            kernel: vec![1, 1],
            saturating: false,
            out: U16,
        });
        roundtrip(&UberExpr::Narrow {
            arg: Box::new(sum),
            shift: 0,
            round: false,
            saturating: true,
            out: U8,
        });
    }
}
