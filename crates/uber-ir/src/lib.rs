//! The Uber-Instruction IR (§3 of the Rake paper).
//!
//! An *uber-instruction* implements the high-level compute pattern shared
//! by a family of concrete HVX intrinsics. Rake lifts Halide IR expressions
//! into sequences of uber-instructions first (clustering operations that a
//! single hardware instruction family can implement), then lowers each
//! uber-instruction to concrete intrinsics. The families modeled here are
//! the ones the paper names (Figures 5–6):
//!
//! * [`UberExpr::VsMpyAdd`] — vector–scalar multiply-add with a weight
//!   kernel: unifies `vadd`, `vmpy`, `vmpa`, `vtmpy`, `vdmpy`, `vrmpy` and
//!   their accumulating variants.
//! * [`UberExpr::VvMpyAdd`] — vector–vector multiply-add (dot products).
//! * [`UberExpr::Narrow`] — fused downcast with optional shift, rounding
//!   and saturation: unifies `vpack`, `vsat`, `vshuffe`, `vasr`-narrow,
//!   `vround`.
//! * [`UberExpr::Widen`] — zero/sign extension (`vzxt`, `vsxt`).
//! * [`UberExpr::AbsDiff`], [`UberExpr::Min`], [`UberExpr::Max`],
//!   [`UberExpr::Average`], [`UberExpr::Shl`] — the remaining lane-wise
//!   families (`vabsdiff`, `vmin`/`vmax`, `vavg`/`vnavg`, `vasl`).
//! * [`UberExpr::Data`] / [`UberExpr::Bcast`] — abstract data sources
//!   (`load-data` in Figure 5; broadcasts).
//!
//! The IR is *layout-free*: uber-expressions denote natural-order typed
//! vectors, and all interleave/deinterleave reasoning happens during
//! lowering (§5.1).
//!
//! # Example
//!
//! ```
//! use uber_ir::{eval_uber, UberExpr};
//! use halide_ir::{Buffer2D, Env, EvalCtx};
//! use lanes::ElemType;
//!
//! // (vs-mpy-add (load-data) [kernel: 1 2 1]) — a 3-tap filter row,
//! // Figure 9 step 7.
//! let e = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
//! let mut env = Env::new();
//! env.insert(Buffer2D::from_fn("in", ElemType::U8, 16, 1, |x, _| x as i64));
//! let out = eval_uber(&e, &EvalCtx { env: &env, x0: 1, y0: 0, lanes: 4 })?;
//! assert_eq!(out.get(0), 0 + 2 * 1 + 2); // in(0) + 2*in(1) + in(2)
//! # Ok::<(), halide_ir::EvalError>(())
//! ```

mod expr;
mod interp;
mod print;
pub mod sexpr;

pub use expr::{ScalarSource, UberExpr, VsMpyAdd, VvMpyAdd};
pub use interp::eval_uber;
