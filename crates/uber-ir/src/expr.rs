//! The uber-instruction expression AST.

use halide_ir::Load;
use lanes::ElemType;

/// A scalar source for broadcasts: a compile-time constant or a runtime
/// scalar read from a buffer (absolute column, tile-relative row).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ScalarSource {
    /// Immediate constant.
    Imm(i64),
    /// Runtime scalar `buffer(x, y0 + dy)`.
    Scalar {
        /// Buffer name.
        buffer: String,
        /// Absolute column.
        x: i32,
        /// Row offset relative to the tile's `y`.
        dy: i32,
    },
}

/// The `vs-mpy-add` uber-instruction: `out[i] = Σ_k inputs[k][i] *
/// kernel[k]`, accumulated at full precision and wrapped (or saturated)
/// into `out`.
///
/// This single pattern unifies `vadd` (kernel `[1,1]`, same-width output),
/// `vmpy` (widening, kernel `[w]`), `vmpa`/`vtmpy` (2–3 inputs, widening),
/// and with consecutive-offset load inputs it is exactly a sliding-window
/// reduction (`vtmpy`/`vdmpy`/`vrmpy`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VsMpyAdd {
    /// Input vectors, all of the same element type.
    pub inputs: Vec<UberExpr>,
    /// One weight per input.
    pub kernel: Vec<i64>,
    /// Saturate (rather than wrap) into the output type.
    pub saturating: bool,
    /// Output element type; must be at least as wide as the input type.
    pub out: ElemType,
}

/// The `vv-mpy-add` uber-instruction: `out[i] = Σ_k a_k[i] * b_k[i]` —
/// vector–vector multiply-add (element-wise products and dot products).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VvMpyAdd {
    /// Multiplicand pairs; all operands share one element type.
    pub pairs: Vec<(UberExpr, UberExpr)>,
    /// Saturate into the output type.
    pub saturating: bool,
    /// Output element type.
    pub out: ElemType,
}

/// An uber-instruction expression (see the crate docs for the catalogue).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum UberExpr {
    /// Abstract data load (`load-data` in the paper's Figure 5): the
    /// lowering decides how the window is actually fetched.
    Data(Load),
    /// Scalar broadcast.
    Bcast {
        /// The scalar.
        value: ScalarSource,
        /// Lane type.
        ty: ElemType,
    },
    /// Vector–scalar multiply-add.
    VsMpyAdd(VsMpyAdd),
    /// Vector–vector multiply-add.
    VvMpyAdd(VvMpyAdd),
    /// Absolute difference.
    AbsDiff(Box<UberExpr>, Box<UberExpr>),
    /// Lane minimum.
    Min(Box<UberExpr>, Box<UberExpr>),
    /// Lane maximum.
    Max(Box<UberExpr>, Box<UberExpr>),
    /// Halving average `(a + b + round) >> 1`.
    Average {
        /// First operand.
        a: Box<UberExpr>,
        /// Second operand.
        b: Box<UberExpr>,
        /// Round up.
        round: bool,
    },
    /// Fused downcast: shift right (optionally rounding), then wrap or
    /// saturate into `out` (which may equal the input width for a plain
    /// shift).
    Narrow {
        /// Operand.
        arg: Box<UberExpr>,
        /// Right-shift amount (0 for a pure cast).
        shift: u32,
        /// Round before shifting.
        round: bool,
        /// Saturate rather than wrap.
        saturating: bool,
        /// Output element type.
        out: ElemType,
    },
    /// Zero/sign extension to a wider type (by the signedness of `out`).
    Widen {
        /// Operand.
        arg: Box<UberExpr>,
        /// Output element type (wider than the operand's).
        out: ElemType,
    },
    /// Lane-wise left shift.
    Shl {
        /// Operand.
        arg: Box<UberExpr>,
        /// Shift amount.
        amount: u32,
    },
}

impl UberExpr {
    /// Convenience constructor for a sliding-window convolution over a
    /// single buffer: `Σ_k input(x + dx + k, y + dy) * kernel[k]`,
    /// expressed as a [`VsMpyAdd`] over consecutive loads.
    pub fn conv(
        buffer: &str,
        elem: ElemType,
        dx: i32,
        dy: i32,
        kernel: &[i64],
        out: ElemType,
    ) -> UberExpr {
        let inputs = (0..kernel.len())
            .map(|k| {
                UberExpr::Data(Load {
                    buffer: buffer.to_owned(),
                    dx: dx + k as i32,
                    dy,
                    ty: elem,
                })
            })
            .collect();
        UberExpr::VsMpyAdd(VsMpyAdd {
            inputs,
            kernel: kernel.to_vec(),
            saturating: false,
            out,
        })
    }

    /// The element type of the expression's lanes.
    ///
    /// # Panics
    ///
    /// Panics on an ill-formed node (e.g. empty `vs-mpy-add`); nodes are
    /// validated at construction by the lifting engine.
    pub fn ty(&self) -> ElemType {
        match self {
            UberExpr::Data(l) => l.ty,
            UberExpr::Bcast { ty, .. } => *ty,
            UberExpr::VsMpyAdd(v) => v.out,
            UberExpr::VvMpyAdd(v) => v.out,
            UberExpr::AbsDiff(a, _) | UberExpr::Min(a, _) | UberExpr::Max(a, _) => a.ty(),
            UberExpr::Average { a, .. } => a.ty(),
            UberExpr::Narrow { out, .. } => *out,
            UberExpr::Widen { out, .. } => *out,
            UberExpr::Shl { arg, .. } => arg.ty(),
        }
    }

    /// Immediate children.
    pub fn children(&self) -> Vec<&UberExpr> {
        match self {
            UberExpr::Data(_) | UberExpr::Bcast { .. } => Vec::new(),
            UberExpr::VsMpyAdd(v) => v.inputs.iter().collect(),
            UberExpr::VvMpyAdd(v) => {
                v.pairs.iter().flat_map(|(a, b)| [a, b]).collect()
            }
            UberExpr::AbsDiff(a, b) | UberExpr::Min(a, b) | UberExpr::Max(a, b) => {
                vec![a, b]
            }
            UberExpr::Average { a, b, .. } => vec![a, b],
            UberExpr::Narrow { arg, .. } | UberExpr::Widen { arg, .. } | UberExpr::Shl { arg, .. } => {
                vec![arg]
            }
        }
    }

    /// Number of uber-instructions in the expression (data sources and
    /// broadcasts count as instructions, as in the paper's Figure 9).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Whether the expression is a pure data source (no compute).
    pub fn is_source(&self) -> bool {
        matches!(self, UberExpr::Data(_) | UberExpr::Bcast { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_builds_consecutive_loads() {
        let e = UberExpr::conv("in", ElemType::U8, -1, 2, &[1, 2, 1], ElemType::U16);
        let UberExpr::VsMpyAdd(v) = &e else { panic!("expected vs-mpy-add") };
        assert_eq!(v.inputs.len(), 3);
        assert_eq!(v.kernel, vec![1, 2, 1]);
        let UberExpr::Data(l0) = &v.inputs[0] else { panic!() };
        let UberExpr::Data(l2) = &v.inputs[2] else { panic!() };
        assert_eq!((l0.dx, l0.dy), (-1, 2));
        assert_eq!((l2.dx, l2.dy), (1, 2));
        assert_eq!(e.ty(), ElemType::U16);
    }

    #[test]
    fn node_counts() {
        let e = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 1], ElemType::U16);
        assert_eq!(e.node_count(), 3);
        let n = UberExpr::Narrow {
            arg: Box::new(e),
            shift: 4,
            round: true,
            saturating: true,
            out: ElemType::U8,
        };
        assert_eq!(n.node_count(), 4);
        assert_eq!(n.ty(), ElemType::U8);
    }

    #[test]
    fn sources() {
        let d = UberExpr::Data(Load { buffer: "b".into(), dx: 0, dy: 0, ty: ElemType::I16 });
        assert!(d.is_source());
        assert_eq!(d.ty(), ElemType::I16);
        assert!(d.children().is_empty());
        let b = UberExpr::Bcast { value: ScalarSource::Imm(3), ty: ElemType::U8 };
        assert!(b.is_source());
    }
}
