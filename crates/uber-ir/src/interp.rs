//! Reference interpreter for the Uber-Instruction IR.
//!
//! Uber-expressions denote natural-order typed vectors; this interpreter
//! is the semantic anchor the lifting stage verifies against (Halide IR ≡
//! Uber IR) and the lowering stage verifies from (Uber IR ≡ HVX).

use halide_ir::{EvalCtx, EvalError};
use lanes::{ElemType, Vector};

use crate::expr::{ScalarSource, UberExpr};

fn scalar(s: &ScalarSource, ctx: &EvalCtx<'_>) -> Result<i64, EvalError> {
    match s {
        ScalarSource::Imm(v) => Ok(*v),
        ScalarSource::Scalar { buffer, x, dy } => {
            let buf = ctx
                .env
                .get(buffer)
                .ok_or_else(|| EvalError::UnknownBuffer(buffer.clone()))?;
            Ok(buf.get(i64::from(*x), ctx.y0 + i64::from(*dy)))
        }
    }
}

/// Evaluate an uber-expression at `ctx`, producing one typed vector.
///
/// # Errors
///
/// Returns an error if a load references a missing buffer or disagrees
/// with its element type.
pub fn eval_uber(e: &UberExpr, ctx: &EvalCtx<'_>) -> Result<Vector, EvalError> {
    match e {
        UberExpr::Data(l) => {
            let buf = ctx
                .env
                .get(&l.buffer)
                .ok_or_else(|| EvalError::UnknownBuffer(l.buffer.clone()))?;
            if buf.elem() != l.ty {
                return Err(EvalError::BufferTypeMismatch {
                    buffer: l.buffer.clone(),
                    expected: l.ty,
                    actual: buf.elem(),
                });
            }
            Ok(Vector::from_fn(l.ty, ctx.lanes, |i| {
                buf.get(ctx.x0 + i64::from(l.dx) + i as i64, ctx.y0 + i64::from(l.dy))
            }))
        }
        UberExpr::Bcast { value, ty } => Ok(Vector::splat(*ty, scalar(value, ctx)?, ctx.lanes)),
        UberExpr::VsMpyAdd(v) => {
            let inputs = v
                .inputs
                .iter()
                .map(|i| eval_uber(i, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            let finish = finisher(v.saturating, v.out);
            Ok(Vector::from_fn(v.out, ctx.lanes, |i| {
                let sum: i128 = inputs
                    .iter()
                    .zip(&v.kernel)
                    .map(|(inp, &w)| i128::from(inp.get(i)) * i128::from(w))
                    .sum();
                finish(sum)
            }))
        }
        UberExpr::VvMpyAdd(v) => {
            let pairs = v
                .pairs
                .iter()
                .map(|(a, b)| Ok::<_, EvalError>((eval_uber(a, ctx)?, eval_uber(b, ctx)?)))
                .collect::<Result<Vec<_>, _>>()?;
            let finish = finisher(v.saturating, v.out);
            Ok(Vector::from_fn(v.out, ctx.lanes, |i| {
                let sum: i128 = pairs
                    .iter()
                    .map(|(a, b)| i128::from(a.get(i)) * i128::from(b.get(i)))
                    .sum();
                finish(sum)
            }))
        }
        UberExpr::AbsDiff(a, b) => {
            let (va, vb) = (eval_uber(a, ctx)?, eval_uber(b, ctx)?);
            let ty = va.ty();
            Ok(va.zip(&vb, |x, y| lanes::absd(ty, x, y)))
        }
        UberExpr::Min(a, b) => {
            let (va, vb) = (eval_uber(a, ctx)?, eval_uber(b, ctx)?);
            Ok(va.zip(&vb, |x, y| x.min(y)))
        }
        UberExpr::Max(a, b) => {
            let (va, vb) = (eval_uber(a, ctx)?, eval_uber(b, ctx)?);
            Ok(va.zip(&vb, |x, y| x.max(y)))
        }
        UberExpr::Average { a, b, round } => {
            let (va, vb) = (eval_uber(a, ctx)?, eval_uber(b, ctx)?);
            let ty = va.ty();
            Ok(va.zip(&vb, |x, y| lanes::avg(ty, x, y, *round)))
        }
        UberExpr::Narrow { arg, shift, round, saturating, out } => {
            let v = eval_uber(arg, ctx)?;
            let ty = v.ty();
            let (sh, rnd, sat, o) = (*shift, *round, *saturating, *out);
            Ok(v.map_to(o, |x| {
                let shifted = if sh == 0 {
                    x
                } else if rnd {
                    // The rounding bias is added with a *wrapping* add at the
                    // source width, matching both the HVX vasr:rnd[:sat]
                    // datapath and Halide's `(x + (1 << (n-1))) >> n` source
                    // pattern on a fixed-width type. Rounding at full
                    // precision here would diverge from the lowered machine
                    // code near the source type's upper boundary.
                    lanes::asr_rnd(ty, x, sh)
                } else {
                    lanes::asr(ty, x, sh)
                };
                if sat {
                    o.saturate(shifted)
                } else {
                    o.wrap(shifted)
                }
            }))
        }
        UberExpr::Widen { arg, out } => {
            let v = eval_uber(arg, ctx)?;
            // Canonical values carry their sign, so extension is identity.
            Ok(v.map_to(*out, |x| x))
        }
        UberExpr::Shl { arg, amount } => {
            let v = eval_uber(arg, ctx)?;
            let ty = v.ty();
            Ok(v.map(|x| lanes::shl(ty, x, *amount)))
        }
    }
}

fn finisher(saturating: bool, out: ElemType) -> impl Fn(i128) -> i64 {
    move |sum: i128| {
        if saturating {
            out.saturate(sum.clamp(i64::MIN as i128, i64::MAX as i128) as i64)
        } else {
            // Wrap at 64 bits first (safe: canonical inputs keep sums far
            // below i128 range), then into the output type.
            out.wrap(sum as i64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::VsMpyAdd;
    use halide_ir::{Buffer2D, Env, Load};

    fn env() -> Env {
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("in", ElemType::U8, 32, 4, |x, y| (x + 2 * y) as i64));
        env
    }

    fn ctx(env: &Env) -> EvalCtx<'_> {
        EvalCtx { env, x0: 2, y0: 1, lanes: 4 }
    }

    #[test]
    fn vs_mpy_add_is_weighted_sum() {
        let e = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let env = env();
        let v = eval_uber(&e, &ctx(&env)).unwrap();
        // in(x,1) = x + 2; lane 0: in(1)+2*in(2)+in(3) = 3 + 8 + 5 = 16.
        assert_eq!(v.get(0), 16);
        assert_eq!(v.ty(), ElemType::U16);
    }

    #[test]
    fn vadd_is_vs_mpy_add_with_unit_kernel() {
        // The paper's point: vadd == vs-mpy-add with kernel (1 1).
        let load = |dx| UberExpr::Data(Load { buffer: "in".into(), dx, dy: 0, ty: ElemType::U8 });
        let e = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![load(0), load(1)],
            kernel: vec![1, 1],
            saturating: false,
            out: ElemType::U8, // same-width: wrapping vector add
        });
        let env = env();
        let v = eval_uber(&e, &ctx(&env)).unwrap();
        // lane 0: in(2,1) + in(3,1) = 4 + 5 (mod 256)
        assert_eq!(v.get(0), 9);
    }

    #[test]
    fn saturating_output() {
        let e = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![UberExpr::Data(Load {
                buffer: "in".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })],
            kernel: vec![100],
            saturating: true,
            out: ElemType::U8,
        });
        let env = env();
        let v = eval_uber(&e, &ctx(&env)).unwrap();
        assert_eq!(v.get(0), 255); // 4 * 100 saturates
    }

    #[test]
    fn narrow_with_round_and_sat() {
        let wide = UberExpr::conv("in", ElemType::U8, 0, 0, &[64, 64], ElemType::U16);
        let n = UberExpr::Narrow {
            arg: Box::new(wide),
            shift: 4,
            round: true,
            saturating: true,
            out: ElemType::U8,
        };
        let env = env();
        let v = eval_uber(&n, &ctx(&env)).unwrap();
        // lane 0: (4*64 + 5*64 + 8) >> 4 = (576 + 8) >> 4 = 36.
        assert_eq!(v.get(0), 36);
        // lane 3: (7*64 + 8*64 + 8) >> 4 = 60 -> fits, no saturation.
        assert_eq!(v.get(3), 60);
    }

    #[test]
    fn rounding_narrow_wraps_at_source_width() {
        // The round-add wraps at the source width, exactly like the HVX
        // vasr:rnd:sat datapath: i16 32767 + 1 wraps to -32768, shifts to
        // -16384 and saturates to i8 -128. Full-precision rounding would
        // have produced +127 — the miscompile the oracle first caught.
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("hot", ElemType::I16, 8, 1, |x, _| {
            if x % 2 == 0 {
                i64::from(i16::MAX)
            } else {
                100
            }
        }));
        let n = UberExpr::Narrow {
            arg: Box::new(UberExpr::Data(Load {
                buffer: "hot".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::I16,
            })),
            shift: 1,
            round: true,
            saturating: true,
            out: ElemType::I8,
        };
        let v = eval_uber(&n, &EvalCtx { env: &env, x0: 0, y0: 0, lanes: 4 }).unwrap();
        assert_eq!(v.get(0), -128);
        assert_eq!(v.get(1), 50); // (100 + 1) >> 1, in range: unaffected
    }

    #[test]
    fn average_and_absdiff() {
        let load = |dx| {
            Box::new(UberExpr::Data(Load { buffer: "in".into(), dx, dy: 0, ty: ElemType::U8 }))
        };
        let env = env();
        let avg =
            eval_uber(&UberExpr::Average { a: load(0), b: load(2), round: true }, &ctx(&env))
                .unwrap();
        // lane 0: (4 + 6 + 1) >> 1 = 5
        assert_eq!(avg.get(0), 5);
        let ad = eval_uber(&UberExpr::AbsDiff(load(0), load(2)), &ctx(&env)).unwrap();
        assert_eq!(ad.get(0), 2);
    }

    #[test]
    fn widen_preserves_value() {
        let d = UberExpr::Data(Load { buffer: "in".into(), dx: 0, dy: 0, ty: ElemType::U8 });
        let w = UberExpr::Widen { arg: Box::new(d), out: ElemType::U16 };
        let env = env();
        let v = eval_uber(&w, &ctx(&env)).unwrap();
        assert_eq!(v.ty(), ElemType::U16);
        assert_eq!(v.get(1), 5);
    }

    #[test]
    fn runtime_scalar_broadcast() {
        let e = UberExpr::Bcast {
            value: ScalarSource::Scalar { buffer: "in".into(), x: 3, dy: 0 },
            ty: ElemType::U8,
        };
        let env = env();
        let v = eval_uber(&e, &ctx(&env)).unwrap();
        // in(3, 1) = 5 broadcast
        assert_eq!(v.as_slice(), &[5, 5, 5, 5]);
    }

    #[test]
    fn missing_buffer_errors() {
        let e = UberExpr::Data(Load { buffer: "nope".into(), dx: 0, dy: 0, ty: ElemType::U8 });
        let env = Env::new();
        assert!(eval_uber(&e, &EvalCtx { env: &env, x0: 0, y0: 0, lanes: 2 }).is_err());
    }
}
