//! The CDCL engine.

use crate::types::{Lit, Model, Var};

/// Result of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness assignment.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// Whether the result is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Search statistics, for benchmarking and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learned clauses currently in the database.
    pub learned: u64,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    activity: f64,
    learned: bool,
    deleted: bool,
}

/// Indexed binary max-heap over variable activities.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<u32>,
    pos: Vec<i32>, // -1 when absent
}

impl VarHeap {
    fn grow(&mut self, n: usize) {
        self.pos.resize(n, -1);
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn less(a: u32, b: u32, act: &[f64]) -> bool {
        act[a as usize] > act[b as usize]
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(v, self.heap[parent], act) {
                self.heap[i] = self.heap[parent];
                self.pos[self.heap[i] as usize] = i as i32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as i32;
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        let v = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && Self::less(self.heap[right], self.heap[left], act)
            {
                right
            } else {
                left
            };
            if Self::less(self.heap[child], v, act) {
                self.heap[i] = self.heap[child];
                self.pos[self.heap[i] as usize] = i as i32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.pos[v as usize] = i as i32;
    }

    fn insert(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn update(&mut self, v: u32, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize, act);
        }
    }

    fn pop(&mut self, act: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = -1;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }
}

/// A CDCL SAT solver over clauses added with [`Solver::add_clause`].
///
/// The solver is not incremental: add all clauses, then call
/// [`Solver::solve`]. See the crate docs for an example.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // indexed by literal code
    values: Vec<i8>,        // per var: 0 unassigned, 1 true, -1 false
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    heap: VarHeap,
    seen: Vec<bool>,
    unsat: bool,
    stats: Stats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;
const RESCALE: f64 = 1e100;

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            phase: Vec::new(),
            heap: VarHeap::default(),
            seen: Vec::new(),
            unsat: false,
            stats: Stats::default(),
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(0);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow(self.values.len());
        self.heap.insert(v.0, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    fn lit_val(&self, l: Lit) -> i8 {
        let v = self.values[l.var().index()];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause (a disjunction of literals).
    ///
    /// Duplicate literals are removed; tautological clauses are dropped.
    /// Adding an empty clause (or a unit clause contradicting an earlier
    /// one) makes the formula trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable was not created by this solver, or if
    /// called after search has started a decision (clauses must be added at
    /// decision level 0).
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if self.unsat {
            return;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(l.var().index() < self.num_vars(), "unknown variable {}", l.var());
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology or already-satisfied-at-level-0 check; drop false lits.
        let mut i = 0;
        while i < lits.len() {
            if i + 1 < lits.len() && lits[i].var() == lits[i + 1].var() {
                return; // l and !l: tautology
            }
            match self.lit_val(lits[i]) {
                1 => return, // satisfied at level 0
                -1 => {
                    lits.remove(i);
                }
                _ => i += 1,
            }
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                self.enqueue(lits[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let cref = self.clauses.len() as u32;
                self.watches[lits[0].code()].push(cref);
                self.watches[lits[1].code()].push(cref);
                self.clauses.push(Clause { lits, activity: 0.0, learned: false, deleted: false });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, from: Option<u32>) {
        debug_assert_eq!(self.lit_val(l), 0);
        let v = l.var().index();
        self.values[v] = if l.is_positive() { 1 } else { -1 };
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Propagate all enqueued assignments; returns a conflicting clause ref
    /// if one arises.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                if self.clauses[cref as usize].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                // Ensure the false literal is at position 1.
                {
                    let c = &mut self.clauses[cref as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref as usize].lits[0];
                if self.lit_val(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut moved = false;
                let len = self.clauses[cref as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.lit_val(lk) != -1 {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[lk.code()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                if self.lit_val(first) == -1 {
                    // Conflict: restore remaining watches.
                    self.watches[false_lit.code()] = ws;
                    return Some(cref);
                }
                // Unit.
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > RESCALE {
            for a in &mut self.activity {
                *a /= RESCALE;
            }
            self.var_inc /= RESCALE;
        }
        self.heap.update(v as u32, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        if !c.learned {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > RESCALE {
            for cl in self.clauses.iter_mut().filter(|cl| cl.learned) {
                cl.activity /= RESCALE;
            }
            self.cla_inc /= RESCALE;
        }
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        loop {
            self.bump_clause(confl);
            let lits = self.clauses[confl as usize].lits.clone();
            let start = usize::from(p.is_some());
            for &q in &lits[start..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(v);
                    if self.level[v] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal on the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[idx];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision must have a reason");
        }
        learnt[0] = !p.expect("found UIP");

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<bool> = learnt
            .iter()
            .enumerate()
            .map(|(i, &l)| i == 0 || !self.lit_redundant(l))
            .collect();
        let mut minimized = Vec::with_capacity(learnt.len());
        for (i, &l) in learnt.iter().enumerate() {
            if keep[i] {
                minimized.push(l);
            }
        }
        for &l in &minimized {
            self.seen[l.var().index()] = false;
        }
        // `learnt[1..]` marks may linger on dropped literals; clear them.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let learnt = minimized;

        // Backjump level: highest level among learnt[1..].
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        (learnt, backjump)
    }

    /// A literal is redundant in the learned clause if its reason's other
    /// literals are all already marked (basic self-subsumption test).
    fn lit_redundant(&self, l: Lit) -> bool {
        let v = l.var().index();
        let Some(r) = self.reason[v] else { return false };
        self.clauses[r as usize].lits[1..].iter().all(|q| {
            let qv = q.var().index();
            self.seen[qv] || self.level[qv] == 0
        })
    }

    fn backtrack(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("non-empty trail");
                let v = l.var().index();
                self.phase[v] = l.is_positive();
                self.values[v] = 0;
                self.reason[v] = None;
                self.heap.insert(v as u32, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    fn learn(&mut self, learnt: Vec<Lit>, backjump: u32) {
        self.backtrack(backjump);
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
            return;
        }
        let mut lits = learnt;
        // Watch the asserting literal and the highest-level other literal.
        let mut max_i = 1;
        for i in 2..lits.len() {
            if self.level[lits[i].var().index()] > self.level[lits[max_i].var().index()] {
                max_i = i;
            }
        }
        lits.swap(1, max_i);
        let cref = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        let asserting = lits[0];
        self.clauses.push(Clause { lits, activity: self.cla_inc, learned: true, deleted: false });
        self.stats.learned += 1;
        self.enqueue(asserting, Some(cref));
    }

    fn reduce_db(&mut self) {
        let locked: Vec<u32> = self.reason.iter().flatten().copied().collect();
        let mut learned: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learned && !c.deleted && c.lits.len() > 2 && !locked.contains(&i)
            })
            .collect();
        learned.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .expect("activities are finite")
        });
        for &cref in &learned[..learned.len() / 2] {
            let c = &mut self.clauses[cref as usize];
            c.deleted = true;
            self.stats.learned -= 1;
            let (w0, w1) = (c.lits[0], c.lits[1]);
            self.watches[w0.code()].retain(|&x| x != cref);
            self.watches[w1.code()].retain(|&x| x != cref);
        }
    }

    fn luby(i: u64) -> u64 {
        // Luby sequence: 1 1 2 1 1 2 4 ...
        let mut k = 1u32;
        while (1u64 << k) < i + 2 {
            k += 1;
        }
        let mut i = i;
        let mut size = (1u64 << k) - 1;
        while size != i + 1 {
            size = (size - 1) / 2;
            k -= 1;
            i %= size;
        }
        1u64 << (k - 1)
    }

    /// Decide satisfiability of the accumulated clauses.
    ///
    /// Returns [`SatResult::Sat`] with a full model or [`SatResult::Unsat`].
    /// May be called repeatedly; each call restarts the search (the learned
    /// clauses are kept, so re-solving is cheap).
    pub fn solve(&mut self) -> SatResult {
        self.solve_limited(u64::MAX).expect("unlimited solve always decides")
    }

    /// Like [`Solver::solve`], but give up after `max_conflicts` conflicts,
    /// returning `None` ("unknown"). Clients with an independent confidence
    /// source (e.g. differential testing) use this to bound proof effort.
    pub fn solve_limited(&mut self, max_conflicts: u64) -> Option<SatResult> {
        if self.unsat {
            return Some(SatResult::Unsat);
        }
        self.backtrack(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return Some(SatResult::Unsat);
        }
        let mut restart_idx: u64 = 0;
        let mut conflicts_until_restart = Self::luby(restart_idx) * 100;
        let mut max_learned = 2000 + self.clauses.len() as u64 / 2;
        let mut budget = max_conflicts;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if budget == 0 {
                    self.backtrack(0);
                    return None;
                }
                budget -= 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Some(SatResult::Unsat);
                }
                let (learnt, backjump) = self.analyze(confl);
                self.learn(learnt, backjump);
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if self.stats.learned > max_learned {
                    self.reduce_db();
                    max_learned += max_learned / 2;
                }
            } else if conflicts_until_restart == 0 {
                self.stats.restarts += 1;
                restart_idx += 1;
                conflicts_until_restart = Self::luby(restart_idx) * 100;
                self.backtrack(0);
            } else {
                // Decide.
                let mut decision = None;
                while let Some(v) = self.heap.pop(&self.activity) {
                    if self.values[v as usize] == 0 {
                        decision = Some(v);
                        break;
                    }
                }
                let Some(v) = decision else {
                    // All variables assigned: SAT.
                    let values = self.values.iter().map(|&x| x == 1).collect();
                    return Some(SatResult::Sat(Model { values }));
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = Lit::with_polarity(Var(v), self.phase[v as usize]);
                self.enqueue(lit, None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        assert!(s.solve().is_sat());

        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v)]);
        s.add_clause([Lit::neg(v)]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause([Lit::pos(v), Lit::neg(v)]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn implication_chain() {
        // x0 ∧ (x_i → x_{i+1}) forces all true.
        let mut s = Solver::new();
        let xs = lits(&mut s, 20);
        s.add_clause([xs[0]]);
        for w in xs.windows(2) {
            s.add_clause([!w[0], w[1]]);
        }
        match s.solve() {
            SatResult::Sat(m) => {
                for &x in &xs {
                    assert!(m.lit_value(x));
                }
            }
            SatResult::Unsat => panic!("chain should be sat"),
        }
    }

    fn pigeonhole(pigeons: usize, holes: usize) -> Solver {
        // var (p, h) = p*holes + h: pigeon p in hole h.
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..pigeons * holes).map(|_| s.new_var()).collect();
        let at = |p: usize, h: usize| Lit::pos(vars[p * holes + h]);
        for p in 0..pigeons {
            s.add_clause((0..holes).map(|h| at(p, h)));
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in p1 + 1..pigeons {
                    s.add_clause([!at(p1, h), !at(p2, h)]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_unsat() {
        assert_eq!(pigeonhole(4, 3).solve(), SatResult::Unsat);
        assert_eq!(pigeonhole(6, 5).solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        assert!(pigeonhole(4, 4).solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses_random() {
        use lanes::rng::Rng;
        for seed in 0..30u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let nvars = 30;
            let nclauses = 120;
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let c: Vec<Lit> = (0..3)
                    .map(|_| {
                        Lit::with_polarity(vars[rng.gen_range_usize(0..=nvars - 1)], rng.gen_bool(0.5))
                    })
                    .collect();
                clauses.push(c.clone());
                s.add_clause(c);
            }
            if let SatResult::Sat(m) = s.solve() {
                for c in &clauses {
                    // Skip tautologies the solver dropped; they are
                    // satisfied under any assignment anyway.
                    assert!(
                        c.iter().any(|&l| m.lit_value(l)),
                        "clause {c:?} unsatisfied (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        use lanes::rng::Rng;
        for seed in 0..60u64 {
            let mut rng = Rng::seed_from_u64(1000 + seed);
            let nvars = 8usize;
            let nclauses = rng.gen_range_usize(10..=39);
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nclauses {
                let c: Vec<(usize, bool)> = (0..rng.gen_range_usize(1..=3))
                    .map(|_| (rng.gen_range_usize(0..=nvars - 1), rng.gen_bool(0.5)))
                    .collect();
                s.add_clause(c.iter().map(|&(v, pos)| Lit::with_polarity(vars[v], pos)));
                clauses.push(c);
            }
            let brute_sat = (0..1u32 << nvars).any(|assign| {
                clauses.iter().all(|c| {
                    c.iter().any(|&(v, pos)| ((assign >> v) & 1 == 1) == pos)
                })
            });
            assert_eq!(s.solve().is_sat(), brute_sat, "seed {seed}");
        }
    }

    #[test]
    fn luby_prefix() {
        let got: Vec<u64> = (0..15).map(Solver::luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = pigeonhole(5, 4);
        let _ = s.solve();
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.decisions > 0);
        assert!(st.propagations > 0);
    }

    #[test]
    fn resolve_is_stable() {
        let mut s = pigeonhole(4, 4);
        assert!(s.solve().is_sat());
        assert!(s.solve().is_sat());
    }
}
