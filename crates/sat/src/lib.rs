//! A CDCL SAT solver.
//!
//! This crate is the search core under the bit-vector SMT layer that Rake's
//! synthesis queries run on (the reproduction's stand-in for Z3, see
//! DESIGN.md). It implements the standard conflict-driven clause-learning
//! architecture:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with clause minimization,
//! * exponential VSIDS branching with phase saving,
//! * Luby-sequence restarts,
//! * activity-based learned-clause reduction.
//!
//! # Example
//!
//! ```
//! use rake_sat::{Lit, SatResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);   // a ∨ b
//! s.add_clause([Lit::neg(a)]);                // ¬a
//! match s.solve() {
//!     SatResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     SatResult::Unsat => unreachable!(),
//! }
//! ```

mod solver;
mod types;

pub use solver::{SatResult, Solver, Stats};
pub use types::{Lit, Model, Var};
