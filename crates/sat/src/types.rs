//! Variables, literals and models.

use std::fmt;
use std::ops::Not;

/// A propositional variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `2*var + sign`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// A literal of `v` with the given polarity (`true` = positive).
    pub fn with_polarity(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A satisfying assignment returned by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    pub(crate) values: Vec<bool>,
}

impl Model {
    /// The value assigned to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by the solver that produced this model.
    pub fn value(&self, v: Var) -> bool {
        self.values[v.index()]
    }

    /// The truth value of a literal under the model.
    pub fn lit_value(&self, l: Lit) -> bool {
        self.value(l.var()) == l.is_positive()
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing() {
        let v = Var(3);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).is_positive());
        assert!(!Lit::neg(v).is_positive());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::with_polarity(v, true), Lit::pos(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::neg(v));
    }

    #[test]
    fn model_lookup() {
        let m = Model { values: vec![true, false] };
        assert!(m.value(Var(0)));
        assert!(!m.value(Var(1)));
        assert!(m.lit_value(Lit::neg(Var(1))));
        assert!(!m.lit_value(Lit::neg(Var(0))));
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lit::pos(Var(2)).to_string(), "v2");
        assert_eq!(Lit::neg(Var(2)).to_string(), "!v2");
    }
}
