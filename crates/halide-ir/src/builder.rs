//! Ergonomic smart constructors for [`Expr`].
//!
//! These are the functions workload definitions are written with. They
//! validate types eagerly and panic on ill-typed construction — a workload
//! with a type error is a programming bug, not a runtime condition. The
//! fallible equivalents live on [`Expr`] itself.

use lanes::ElemType;

use crate::expr::{BinOp, BroadcastLoad, Cast, Expr, Load, ShiftDir};

/// A vector load `buffer(x + dx, y + dy)`.
pub fn load(buffer: &str, ty: ElemType, dx: i32, dy: i32) -> Expr {
    Expr::Load(Load { buffer: buffer.to_owned(), dx, dy, ty })
}

/// A scalar broadcast `xN(value)`.
///
/// # Panics
///
/// Panics if `value` is not canonical for `ty`.
pub fn bcast(value: i64, ty: ElemType) -> Expr {
    Expr::broadcast(value, ty).unwrap_or_else(|e| panic!("{e}"))
}

/// A broadcast of a runtime scalar `buffer(x, y + dy)` (absolute column,
/// tile-relative row) — the shape unrolled reduction loops produce.
pub fn bcast_load(buffer: &str, x: i32, dy: i32, ty: ElemType) -> Expr {
    Expr::BroadcastLoad(BroadcastLoad { buffer: buffer.to_owned(), x, dy, ty })
}

/// Truncating lane-wise cast.
pub fn cast(to: ElemType, arg: Expr) -> Expr {
    Expr::Cast(Cast { to, saturating: false, arg: Box::new(arg) })
}

/// Saturating lane-wise cast.
pub fn sat_cast(to: ElemType, arg: Expr) -> Expr {
    Expr::Cast(Cast { to, saturating: true, arg: Box::new(arg) })
}

/// Cast to the double-width type of the same signedness (`uint16x128(...)`
/// over a `u8` operand in the paper's notation).
///
/// # Panics
///
/// Panics if the operand type has no wider equivalent (is already 32-bit).
pub fn widen(arg: Expr) -> Expr {
    let to = arg
        .ty()
        .widened()
        .unwrap_or_else(|| panic!("cannot widen {} further", arg.ty()));
    cast(to, arg)
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::binary(op, a, b).unwrap_or_else(|e| panic!("{e}"))
}

/// Wrapping addition.
///
/// # Panics
///
/// Panics on operand type mismatch (as do all binary builders below).
pub fn add(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Add, a, b)
}

/// Wrapping subtraction.
pub fn sub(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Sub, a, b)
}

/// Wrapping multiplication.
pub fn mul(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Mul, a, b)
}

/// Lane minimum.
pub fn min(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Min, a, b)
}

/// Lane maximum.
pub fn max(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Max, a, b)
}

/// Absolute difference.
pub fn absd(a: Expr, b: Expr) -> Expr {
    bin(BinOp::Absd, a, b)
}

/// `clamp(x, lo, hi)` = `max(min(x, hi), lo)`, with broadcast bounds of the
/// operand's type.
///
/// # Panics
///
/// Panics if the bounds do not fit the operand type.
pub fn clamp(x: Expr, lo: i64, hi: i64) -> Expr {
    let ty = x.ty();
    max(min(x, bcast(hi, ty)), bcast(lo, ty))
}

/// Wrapping shift left by an immediate.
///
/// # Panics
///
/// Panics if `amount >= ty.bits()`.
pub fn shl(arg: Expr, amount: u32) -> Expr {
    Expr::shift(ShiftDir::Left, arg, amount).unwrap_or_else(|e| panic!("{e}"))
}

/// Shift right by an immediate (arithmetic for signed types).
///
/// # Panics
///
/// Panics if `amount >= ty.bits()`.
pub fn shr(arg: Expr, amount: u32) -> Expr {
    Expr::shift(ShiftDir::Right, arg, amount).unwrap_or_else(|e| panic!("{e}"))
}

/// Rounding shift right written out as Halide lowers it:
/// `(x + (1 << (amount-1))) >> amount`.
///
/// # Panics
///
/// Panics if `amount` is 0 or out of range for the operand type.
pub fn rounding_shr(arg: Expr, amount: u32) -> Expr {
    assert!(amount > 0, "rounding shift needs a positive amount");
    let ty = arg.ty();
    shr(add(arg, bcast(1i64 << (amount - 1), ty)), amount)
}

/// `(a + b + 1) >> 1` — averaging with round-up, the halving-add pattern
/// pooling layers produce.
pub fn avg_round(a: Expr, b: Expr) -> Expr {
    let ty = a.ty();
    shr(add(add(a, b), bcast(1, ty)), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    #[test]
    fn widen_picks_double_width() {
        let e = widen(load("in", ElemType::U8, 0, 0));
        assert_eq!(e.ty(), ElemType::U16);
    }

    #[test]
    #[should_panic(expected = "cannot widen")]
    fn widen_rejects_32bit() {
        let _ = widen(load("in", ElemType::I32, 0, 0));
    }

    #[test]
    fn clamp_structure() {
        let c = clamp(load("in", ElemType::I16, 0, 0), 0, 255);
        assert_eq!(c.ty(), ElemType::I16);
        assert!(matches!(c, Expr::Binary(ref b) if b.op == BinOp::Max));
    }

    #[test]
    fn rounding_shr_expands() {
        let e = rounding_shr(load("in", ElemType::I16, 0, 0), 4);
        // (x + 8) >> 4
        match &e {
            Expr::Shift(s) => {
                assert_eq!(s.amount, 4);
                match &*s.arg {
                    Expr::Binary(b) => {
                        assert_eq!(b.op, BinOp::Add);
                        assert!(matches!(&*b.rhs, Expr::Broadcast(bc) if bc.value == 8));
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "mismatched types")]
    fn add_panics_on_mismatch() {
        let _ = add(load("a", ElemType::U8, 0, 0), load("b", ElemType::U16, 0, 0));
    }
}
