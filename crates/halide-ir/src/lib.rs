//! A Halide-style vector-expression IR.
//!
//! Rake (ASPLOS 2022) consumes Halide programs *after* lowering and
//! scheduling: what reaches instruction selection is a set of
//! target-independent vector expressions over 2-D input buffers, one per
//! innermost loop body (Figure 3 of the paper). This crate reproduces
//! exactly that interface:
//!
//! * [`Expr`] — the vector-expression AST (loads, broadcasts, casts,
//!   lane-wise arithmetic, shifts),
//! * [`builder`] — ergonomic smart constructors with type checking,
//! * [`Buffer2D`] / [`Env`] / [`eval`] — a reference interpreter that gives
//!   the IR its semantics (clamp-to-edge boundary handling, like a scheduled
//!   Halide pipeline's boundary condition),
//! * [`analysis`] — traversals, the qualifying-expression filter Rake uses
//!   to pick which expressions to optimize, and an interval range analysis
//!   that powers the paper's "semantic reasoning" optimizations (§7.1.2).
//!
//! # Example
//!
//! ```
//! use halide_ir::builder::*;
//! use halide_ir::{eval, Buffer2D, Env, EvalCtx};
//! use lanes::ElemType;
//!
//! // uint16(input(x-1, y)) + uint16(input(x, y)) * 2  — a 2-tap filter row.
//! let e = add(
//!     widen(load("input", ElemType::U8, -1, 0)),
//!     mul(widen(load("input", ElemType::U8, 0, 0)), bcast(2, ElemType::U16)),
//! );
//!
//! let mut env = Env::new();
//! env.insert(Buffer2D::from_fn("input", ElemType::U8, 8, 1, |x, _| x as i64));
//! let out = eval(&e, &EvalCtx { env: &env, x0: 1, y0: 0, lanes: 4 })?;
//! assert_eq!(out.as_slice(), &[0 + 2, 1 + 4, 2 + 6, 3 + 8]);
//! # Ok::<(), halide_ir::EvalError>(())
//! ```

pub mod analysis;
pub mod builder;
mod buffer;
mod expr;
mod interp;
pub mod pipeline;
mod print;
pub mod sexpr;

pub use buffer::{Buffer2D, Env};
pub use expr::{BinOp, Binary, Broadcast, BroadcastLoad, Cast, Expr, Load, Shift, ShiftDir, TypeError};
pub use interp::{eval, EvalCtx, EvalError};
