//! The reference interpreter: the semantics of the IR.

use std::fmt;

use lanes::{ElemType, Vector};

use crate::buffer::Env;
use crate::expr::{BinOp, Expr, ShiftDir};

/// Where and how wide to evaluate an expression: the loop origin `(x0, y0)`
/// and the vectorization width in lanes.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Input buffers.
    pub env: &'a Env,
    /// Loop `x` coordinate of lane 0.
    pub x0: i64,
    /// Loop `y` coordinate.
    pub y0: i64,
    /// Vector width in lanes.
    pub lanes: usize,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A load referenced a buffer name absent from the environment.
    UnknownBuffer(String),
    /// A load's element type disagrees with the buffer's element type.
    BufferTypeMismatch {
        /// Buffer name.
        buffer: String,
        /// Type the load expected.
        expected: ElemType,
        /// Type the buffer actually has.
        actual: ElemType,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownBuffer(name) => write!(f, "unknown buffer `{name}`"),
            EvalError::BufferTypeMismatch { buffer, expected, actual } => write!(
                f,
                "buffer `{buffer}` has element type {actual} but the load expects {expected}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate `expr` at `ctx`, producing one typed vector.
///
/// Loads read `ctx.lanes` consecutive elements starting at
/// `(x0 + dx, y0 + dy)` with clamp-to-edge boundary handling. All lane
/// arithmetic follows the canonical fixed-point semantics of the [`lanes`]
/// crate.
///
/// # Errors
///
/// Returns an error if a load references a missing buffer or disagrees with
/// its element type.
///
/// # Example
///
/// ```
/// use halide_ir::builder::*;
/// use halide_ir::{eval, Buffer2D, Env, EvalCtx};
/// use lanes::ElemType;
///
/// let e = absd(load("a", ElemType::U8, 0, 0), load("b", ElemType::U8, 0, 0));
/// let mut env = Env::new();
/// env.insert(Buffer2D::filled("a", ElemType::U8, 4, 1, 10));
/// env.insert(Buffer2D::filled("b", ElemType::U8, 4, 1, 14));
/// let out = eval(&e, &EvalCtx { env: &env, x0: 0, y0: 0, lanes: 4 })?;
/// assert_eq!(out.as_slice(), &[4, 4, 4, 4]);
/// # Ok::<(), halide_ir::EvalError>(())
/// ```
pub fn eval(expr: &Expr, ctx: &EvalCtx<'_>) -> Result<Vector, EvalError> {
    match expr {
        Expr::Load(l) => {
            let buf = ctx
                .env
                .get(&l.buffer)
                .ok_or_else(|| EvalError::UnknownBuffer(l.buffer.clone()))?;
            if buf.elem() != l.ty {
                return Err(EvalError::BufferTypeMismatch {
                    buffer: l.buffer.clone(),
                    expected: l.ty,
                    actual: buf.elem(),
                });
            }
            Ok(Vector::from_fn(l.ty, ctx.lanes, |i| {
                buf.get(ctx.x0 + i64::from(l.dx) + i as i64, ctx.y0 + i64::from(l.dy))
            }))
        }
        Expr::Broadcast(b) => Ok(Vector::splat(b.ty, b.value, ctx.lanes)),
        Expr::BroadcastLoad(b) => {
            let buf = ctx
                .env
                .get(&b.buffer)
                .ok_or_else(|| EvalError::UnknownBuffer(b.buffer.clone()))?;
            if buf.elem() != b.ty {
                return Err(EvalError::BufferTypeMismatch {
                    buffer: b.buffer.clone(),
                    expected: b.ty,
                    actual: buf.elem(),
                });
            }
            let v = buf.get(i64::from(b.x), ctx.y0 + i64::from(b.dy));
            Ok(Vector::splat(b.ty, v, ctx.lanes))
        }
        Expr::Cast(c) => {
            let v = eval(&c.arg, ctx)?;
            Ok(v.cast(c.to, c.saturating))
        }
        Expr::Binary(b) => {
            let lhs = eval(&b.lhs, ctx)?;
            let rhs = eval(&b.rhs, ctx)?;
            let ty = lhs.ty();
            Ok(match b.op {
                BinOp::Add => lhs.zip(&rhs, |a, b| lanes::add_wrap(ty, a, b)),
                BinOp::Sub => lhs.zip(&rhs, |a, b| lanes::sub_wrap(ty, a, b)),
                BinOp::Mul => lhs.zip(&rhs, |a, b| lanes::mul_wrap(ty, a, b)),
                BinOp::Min => lhs.zip(&rhs, |a, b| lanes::min(ty, a, b)),
                BinOp::Max => lhs.zip(&rhs, |a, b| lanes::max(ty, a, b)),
                BinOp::Absd => lhs.zip(&rhs, |a, b| lanes::absd(ty, a, b)),
            })
        }
        Expr::Shift(s) => {
            let v = eval(&s.arg, ctx)?;
            let ty = v.ty();
            Ok(match s.dir {
                ShiftDir::Left => v.map(|a| lanes::shl(ty, a, s.amount)),
                ShiftDir::Right => v.map(|a| lanes::asr(ty, a, s.amount)),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer2D;
    use crate::builder::*;

    fn ramp_env() -> Env {
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("in", ElemType::U8, 16, 4, |x, y| (x + 16 * y) as i64));
        env
    }

    fn ctx(env: &Env) -> EvalCtx<'_> {
        EvalCtx { env, x0: 2, y0: 1, lanes: 4 }
    }

    #[test]
    fn load_reads_window() {
        let env = ramp_env();
        let v = eval(&load("in", ElemType::U8, -1, 1), &ctx(&env)).unwrap();
        // (x0-1 .. x0+2, y0+1) = (1..5, 2) = 33, 34, 35, 36
        assert_eq!(v.as_slice(), &[33, 34, 35, 36]);
    }

    #[test]
    fn unknown_buffer_is_an_error() {
        let env = Env::new();
        let err = eval(&load("nope", ElemType::U8, 0, 0), &ctx(&env)).unwrap_err();
        assert_eq!(err, EvalError::UnknownBuffer("nope".into()));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let env = ramp_env();
        let err = eval(&load("in", ElemType::U16, 0, 0), &ctx(&env)).unwrap_err();
        assert!(matches!(err, EvalError::BufferTypeMismatch { .. }));
    }

    #[test]
    fn widening_mul_add() {
        let env = ramp_env();
        // u16(in(x,y)) * 2 + u16(in(x+1,y))
        let e = add(
            mul(widen(load("in", ElemType::U8, 0, 0)), bcast(2, ElemType::U16)),
            widen(load("in", ElemType::U8, 1, 0)),
        );
        let v = eval(&e, &ctx(&env)).unwrap();
        // lane i: in(2+i,1)*2 + in(3+i,1) = (18+i)*2 + (19+i)
        assert_eq!(v.as_slice(), &[36 + 19, 38 + 20, 40 + 21, 42 + 22]);
    }

    #[test]
    fn saturating_cast_on_eval() {
        let env = ramp_env();
        let e = sat_cast(ElemType::U8, sub(bcast(0, ElemType::I16), bcast(5, ElemType::I16)));
        let v = eval(&e, &ctx(&env)).unwrap();
        assert_eq!(v.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    fn shifts_respect_signedness() {
        let env = ramp_env();
        let e = shr(bcast(-8, ElemType::I16), 2);
        assert_eq!(eval(&e, &ctx(&env)).unwrap().get(0), -2);
        let e = shr(bcast(65535, ElemType::U16), 8);
        assert_eq!(eval(&e, &ctx(&env)).unwrap().get(0), 255);
    }

    #[test]
    fn clamp_edges_at_boundaries() {
        let env = ramp_env();
        let e = load("in", ElemType::U8, -10, 0);
        let v = eval(&e, &EvalCtx { env: &env, x0: 0, y0: 0, lanes: 3 }).unwrap();
        assert_eq!(v.as_slice(), &[0, 0, 0]);
    }
}
