//! 2-D input buffers and evaluation environments.

use std::collections::BTreeMap;

use lanes::ElemType;

/// A row-major 2-D buffer of canonical scalar values with clamp-to-edge
/// boundary handling (the boundary condition a scheduled Halide pipeline
/// applies to its inputs).
///
/// # Example
///
/// ```
/// use halide_ir::Buffer2D;
/// use lanes::ElemType;
///
/// let b = Buffer2D::from_fn("in", ElemType::U8, 4, 2, |x, y| (x + 10 * y) as i64);
/// assert_eq!(b.get(1, 1), 11);
/// assert_eq!(b.get(-5, 0), 0);   // clamped to column 0
/// assert_eq!(b.get(9, 9), 13);   // clamped to (3, 1)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buffer2D {
    name: String,
    elem: ElemType,
    width: usize,
    height: usize,
    data: Vec<i64>,
}

impl Buffer2D {
    /// Build a buffer by evaluating `f(x, y)` for every site; values are
    /// wrapped into the element type.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn from_fn(
        name: &str,
        elem: ElemType,
        width: usize,
        height: usize,
        mut f: impl FnMut(usize, usize) -> i64,
    ) -> Buffer2D {
        assert!(width > 0 && height > 0, "buffer dimensions must be positive");
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(elem.wrap(f(x, y)));
            }
        }
        Buffer2D { name: name.to_owned(), elem, width, height, data }
    }

    /// A buffer filled with a constant.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn filled(name: &str, elem: ElemType, width: usize, height: usize, v: i64) -> Buffer2D {
        Buffer2D::from_fn(name, elem, width, height, |_, _| v)
    }

    /// Buffer name (the key loads refer to).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Element type.
    pub fn elem(&self) -> ElemType {
        self.elem
    }

    /// Width in elements.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read with clamp-to-edge semantics: out-of-range coordinates are
    /// clamped to the nearest valid site.
    pub fn get(&self, x: i64, y: i64) -> i64 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Overwrite a site (wrapped into the element type).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds — writes never clamp.
    pub fn set(&mut self, x: usize, y: usize, v: i64) {
        assert!(x < self.width && y < self.height, "write out of bounds");
        self.data[y * self.width + x] = self.elem.wrap(v);
    }
}

/// A named collection of input buffers — the evaluation environment of an
/// expression.
#[derive(Debug, Clone, Default)]
pub struct Env {
    buffers: BTreeMap<String, Buffer2D>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Insert (or replace) a buffer, keyed by its name. Returns the
    /// previous buffer with that name, if any.
    pub fn insert(&mut self, buffer: Buffer2D) -> Option<Buffer2D> {
        self.buffers.insert(buffer.name().to_owned(), buffer)
    }

    /// Look up a buffer by name.
    pub fn get(&self, name: &str) -> Option<&Buffer2D> {
        self.buffers.get(name)
    }

    /// Look up a buffer by name, mutably (used by the differential
    /// oracle's input shrinker to zero cells in place).
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Buffer2D> {
        self.buffers.get_mut(name)
    }

    /// Iterate over buffers in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Buffer2D> {
        self.buffers.values()
    }
}

impl FromIterator<Buffer2D> for Env {
    fn from_iter<I: IntoIterator<Item = Buffer2D>>(iter: I) -> Env {
        let mut env = Env::new();
        for b in iter {
            env.insert(b);
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_to_edge() {
        let b = Buffer2D::from_fn("b", ElemType::I16, 3, 3, |x, y| (x * 10 + y) as i64);
        assert_eq!(b.get(-1, -1), b.get(0, 0));
        assert_eq!(b.get(3, 1), b.get(2, 1));
        assert_eq!(b.get(1, 100), b.get(1, 2));
    }

    #[test]
    fn values_wrap_into_elem_type() {
        let b = Buffer2D::from_fn("b", ElemType::U8, 2, 1, |x, _| 300 + x as i64);
        assert_eq!(b.get(0, 0), 44);
        assert_eq!(b.get(1, 0), 45);
    }

    #[test]
    fn env_lookup_and_replace() {
        let mut env = Env::new();
        assert!(env.insert(Buffer2D::filled("a", ElemType::U8, 1, 1, 7)).is_none());
        assert_eq!(env.get("a").unwrap().get(0, 0), 7);
        let old = env.insert(Buffer2D::filled("a", ElemType::U8, 1, 1, 9)).unwrap();
        assert_eq!(old.get(0, 0), 7);
        assert_eq!(env.get("a").unwrap().get(0, 0), 9);
        assert!(env.get("missing").is_none());
    }

    #[test]
    fn env_from_iterator() {
        let env: Env = [
            Buffer2D::filled("x", ElemType::U8, 1, 1, 1),
            Buffer2D::filled("y", ElemType::U8, 1, 1, 2),
        ]
        .into_iter()
        .collect();
        assert_eq!(env.iter().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_does_not_clamp() {
        let mut b = Buffer2D::filled("b", ElemType::U8, 2, 2, 0);
        b.set(2, 0, 1);
    }
}
