//! The vector-expression AST.

use std::fmt;

use lanes::ElemType;

/// A lane-wise binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Lane minimum.
    Min,
    /// Lane maximum.
    Max,
    /// Absolute difference (`absd` in Halide).
    Absd,
}

impl BinOp {
    /// All binary operators.
    pub const ALL: [BinOp; 6] =
        [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max, BinOp::Absd];

    /// Whether `op(a, b) == op(b, a)`.
    pub fn is_commutative(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::Absd)
    }

    /// Halide source-level name.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Absd => "absd",
        }
    }
}

/// Direction of a shift-by-immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDir {
    /// Wrapping shift left.
    Left,
    /// Shift right: arithmetic for signed element types, logical for
    /// unsigned (both coincide on canonical unsigned values).
    Right,
}

/// A vector load of consecutive elements from a named 2-D buffer, offset by
/// `(dx, dy)` from the evaluation origin. Models `input(x + dx, y + dy)` in
/// the paper's lowered loop bodies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Load {
    /// Buffer name.
    pub buffer: String,
    /// Horizontal offset relative to the loop's `x` coordinate.
    pub dx: i32,
    /// Vertical offset relative to the loop's `y` coordinate.
    pub dy: i32,
    /// Element type of the buffer.
    pub ty: ElemType,
}

/// A scalar broadcast, `x128(c)` in the paper's notation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Broadcast {
    /// The canonical scalar value.
    pub value: i64,
    /// Element type of every lane.
    pub ty: ElemType,
}

/// A broadcast of a *runtime* scalar loaded from a buffer — the form
/// unrolled reduction loops produce (`x128(weights(k, y))` in a matrix
/// multiply). The column is absolute; the row is tile-relative.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BroadcastLoad {
    /// Buffer name.
    pub buffer: String,
    /// Absolute column of the scalar.
    pub x: i32,
    /// Row offset relative to the loop's `y` coordinate.
    pub dy: i32,
    /// Element type of the buffer (and of every broadcast lane).
    pub ty: ElemType,
}

/// A lane-wise cast.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cast {
    /// Destination element type.
    pub to: ElemType,
    /// Saturating (`sat_cast`) vs. truncating semantics.
    pub saturating: bool,
    /// Operand.
    pub arg: Box<Expr>,
}

/// A lane-wise binary operation. Both operands must have the same element
/// type, which is also the result type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Binary {
    /// The operator.
    pub op: BinOp,
    /// Left operand.
    pub lhs: Box<Expr>,
    /// Right operand.
    pub rhs: Box<Expr>,
}

/// A lane-wise shift by an immediate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shift {
    /// Direction.
    pub dir: ShiftDir,
    /// Shift amount; must be `< ty.bits()`.
    pub amount: u32,
    /// Operand.
    pub arg: Box<Expr>,
}

/// A target-independent Halide IR vector expression (Figure 3 of the paper).
///
/// Lane count is not part of the expression: the same expression evaluates
/// at any vector width (the schedule picks 128 for HVX; tests use narrower
/// widths). Element types are intrinsic and can be queried with
/// [`Expr::ty`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Vector load from a buffer.
    Load(Load),
    /// Scalar broadcast.
    Broadcast(Broadcast),
    /// Runtime-scalar broadcast.
    BroadcastLoad(BroadcastLoad),
    /// Lane-wise cast.
    Cast(Cast),
    /// Lane-wise binary operation.
    Binary(Binary),
    /// Lane-wise shift by immediate.
    Shift(Shift),
}

/// Error constructing an ill-typed expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// Binary operands have different element types.
    OperandMismatch {
        /// The operator.
        op: BinOp,
        /// Left operand type.
        lhs: ElemType,
        /// Right operand type.
        rhs: ElemType,
    },
    /// A shift amount is as wide as (or wider than) the element type.
    ShiftOutOfRange {
        /// The offending amount.
        amount: u32,
        /// Element type being shifted.
        ty: ElemType,
    },
    /// A broadcast value does not fit its element type.
    BroadcastOutOfRange {
        /// The offending value.
        value: i64,
        /// Target element type.
        ty: ElemType,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::OperandMismatch { op, lhs, rhs } => {
                write!(f, "operands of `{}` have mismatched types {lhs} and {rhs}", op.name())
            }
            TypeError::ShiftOutOfRange { amount, ty } => {
                write!(f, "shift amount {amount} out of range for element type {ty}")
            }
            TypeError::BroadcastOutOfRange { value, ty } => {
                write!(f, "broadcast value {value} does not fit element type {ty}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

impl Expr {
    /// Fallible constructor for a binary operation.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::OperandMismatch`] if the operand element types
    /// differ.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Result<Expr, TypeError> {
        let (lt, rt) = (lhs.ty(), rhs.ty());
        if lt != rt {
            return Err(TypeError::OperandMismatch { op, lhs: lt, rhs: rt });
        }
        Ok(Expr::Binary(Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }))
    }

    /// Fallible constructor for a shift.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::ShiftOutOfRange`] if `amount >= ty.bits()`.
    pub fn shift(dir: ShiftDir, arg: Expr, amount: u32) -> Result<Expr, TypeError> {
        let ty = arg.ty();
        if amount >= ty.bits() {
            return Err(TypeError::ShiftOutOfRange { amount, ty });
        }
        Ok(Expr::Shift(Shift { dir, amount, arg: Box::new(arg) }))
    }

    /// Fallible constructor for a broadcast.
    ///
    /// # Errors
    ///
    /// Returns [`TypeError::BroadcastOutOfRange`] if `value` is not
    /// canonical for `ty`.
    pub fn broadcast(value: i64, ty: ElemType) -> Result<Expr, TypeError> {
        if !ty.contains(value) {
            return Err(TypeError::BroadcastOutOfRange { value, ty });
        }
        Ok(Expr::Broadcast(Broadcast { value, ty }))
    }

    /// The element type of the expression's lanes.
    pub fn ty(&self) -> ElemType {
        match self {
            Expr::Load(l) => l.ty,
            Expr::Broadcast(b) => b.ty,
            Expr::BroadcastLoad(b) => b.ty,
            Expr::Cast(c) => c.to,
            Expr::Binary(b) => b.lhs.ty(),
            Expr::Shift(s) => s.arg.ty(),
        }
    }

    /// Immediate children, left to right.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => Vec::new(),
            Expr::Cast(c) => vec![&c.arg],
            Expr::Binary(b) => vec![&b.lhs, &b.rhs],
            Expr::Shift(s) => vec![&s.arg],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ld(ty: ElemType) -> Expr {
        Expr::Load(Load { buffer: "in".into(), dx: 0, dy: 0, ty })
    }

    #[test]
    fn binary_checks_types() {
        assert!(Expr::binary(BinOp::Add, ld(ElemType::U8), ld(ElemType::U8)).is_ok());
        let err = Expr::binary(BinOp::Add, ld(ElemType::U8), ld(ElemType::U16)).unwrap_err();
        assert!(matches!(err, TypeError::OperandMismatch { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn shift_checks_amount() {
        assert!(Expr::shift(ShiftDir::Left, ld(ElemType::U8), 7).is_ok());
        assert!(Expr::shift(ShiftDir::Left, ld(ElemType::U8), 8).is_err());
    }

    #[test]
    fn broadcast_checks_range() {
        assert!(Expr::broadcast(255, ElemType::U8).is_ok());
        assert!(Expr::broadcast(256, ElemType::U8).is_err());
        assert!(Expr::broadcast(-1, ElemType::U8).is_err());
    }

    #[test]
    fn type_propagates() {
        let e = Expr::Cast(Cast {
            to: ElemType::U16,
            saturating: false,
            arg: Box::new(ld(ElemType::U8)),
        });
        let sum = Expr::binary(BinOp::Add, e.clone(), e).unwrap();
        assert_eq!(sum.ty(), ElemType::U16);
    }

    #[test]
    fn children_order() {
        let b = Expr::binary(BinOp::Sub, ld(ElemType::I16), ld(ElemType::I16)).unwrap();
        assert_eq!(b.children().len(), 2);
        assert!(ld(ElemType::I16).children().is_empty());
    }

    #[test]
    fn commutativity_table() {
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(BinOp::Absd.is_commutative());
    }
}
