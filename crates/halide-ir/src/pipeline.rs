//! A Halide-style pipeline front-end.
//!
//! The paper's input programs are written as Halide *algorithms* — pure
//! functions defined at every `(x, y)` in terms of other functions — plus
//! a *schedule* that picks the tile shape and vectorization (Figure 2).
//! Rake intercepts compilation after lowering, when every intermediate
//! function has been inlined into one vector expression per innermost loop
//! body (Figure 3).
//!
//! This module reproduces that front-end shape: [`Func`]s compose at
//! coordinate offsets, and [`Pipeline::lower`] performs the
//! inline-everything lowering that produces the tile expression handed to
//! instruction selection.
//!
//! # Example — the Sobel x-gradient of Figure 2
//!
//! ```
//! use halide_ir::pipeline::{Func, Pipeline};
//! use halide_ir::builder::{absd, add, bcast, mul, widen};
//! use lanes::ElemType;
//!
//! let input = Func::input("input", ElemType::U8);
//! let in16 = Func::define({
//!     let input = input.clone();
//!     move |x, y| widen(input.at(x, y))
//! });
//! let x_avg = Func::define({
//!     let in16 = in16.clone();
//!     move |x, y| add(
//!         add(in16.at(x - 1, y), mul(in16.at(x, y), bcast(2, ElemType::U16))),
//!         in16.at(x + 1, y),
//!     )
//! });
//! let sobel_x = Func::define({
//!     let x_avg = x_avg.clone();
//!     move |x, y| absd(x_avg.at(x, y - 1), x_avg.at(x, y + 1))
//! });
//!
//! let pipeline = Pipeline::new(sobel_x).vectorize(128);
//! let expr = pipeline.lower();
//! assert_eq!(expr.ty(), ElemType::U16);
//! assert_eq!(halide_ir::analysis::loads(&expr).len(), 6);
//! ```

use std::rc::Rc;

use lanes::ElemType;

use crate::builder::load;
use crate::expr::Expr;

/// A pipeline stage: a pure function from coordinates to values, defined
/// in terms of inputs and other stages. Cloning shares the definition.
#[derive(Clone)]
pub struct Func {
    gen: Rc<dyn Fn(i32, i32) -> Expr>,
}

impl std::fmt::Debug for Func {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Func(at(0,0) = {})", self.at(0, 0))
    }
}

impl Func {
    /// An input image parameter: `input(x, y)` is a buffer load.
    pub fn input(name: &str, ty: ElemType) -> Func {
        let name = name.to_owned();
        Func { gen: Rc::new(move |dx, dy| load(&name, ty, dx, dy)) }
    }

    /// Define a stage by its value at `(x, y)`. References to other stages
    /// are made through [`Func::at`], which composes offsets — exactly
    /// Halide's default inlining.
    pub fn define(f: impl Fn(i32, i32) -> Expr + 'static) -> Func {
        Func { gen: Rc::new(f) }
    }

    /// The stage's value at offset `(dx, dy)` from the loop coordinates,
    /// fully inlined.
    pub fn at(&self, dx: i32, dy: i32) -> Expr {
        (self.gen)(dx, dy)
    }
}

/// An output stage plus its schedule (the part of Figure 2 below the
/// "The schedule" comment that instruction selection cares about: the
/// vectorization width).
#[derive(Debug, Clone)]
pub struct Pipeline {
    output: Func,
    lanes: usize,
}

impl Pipeline {
    /// A pipeline computing `output`, vectorized 128 wide by default.
    pub fn new(output: Func) -> Pipeline {
        Pipeline { output, lanes: 128 }
    }

    /// Set the vectorization width (`.vectorize(xi)` with a split factor).
    pub fn vectorize(mut self, lanes: usize) -> Pipeline {
        self.lanes = lanes;
        self
    }

    /// The vectorization width.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lower to the innermost loop body's vector expression (Figure 3):
    /// every stage inlined, evaluated at the loop origin.
    pub fn lower(&self) -> Expr {
        self.output.at(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::builder::*;
    use crate::{eval, Buffer2D, Env, EvalCtx};

    fn blur_pipeline() -> Pipeline {
        let input = Func::input("img", ElemType::U8);
        let wide = Func::define({
            let input = input.clone();
            move |x, y| widen(input.at(x, y))
        });
        let hsum = Func::define({
            let wide = wide.clone();
            move |x, y| add(add(wide.at(x - 1, y), wide.at(x, y)), wide.at(x + 1, y))
        });
        let out = Func::define({
            let hsum = hsum.clone();
            move |x, y| {
                cast(
                    ElemType::U8,
                    shr(
                        add(
                            add(add(hsum.at(x, y - 1), hsum.at(x, y)), hsum.at(x, y + 1)),
                            bcast(4, ElemType::U16),
                        ),
                        3,
                    ),
                )
            }
        });
        Pipeline::new(out).vectorize(8)
    }

    #[test]
    fn inlining_composes_offsets() {
        let p = blur_pipeline();
        let e = p.lower();
        // 3x3 stencil: 9 loads after full inlining.
        assert_eq!(analysis::loads(&e).len(), 9);
        let dxs: Vec<i32> = analysis::loads(&e).iter().map(|l| l.dx).collect();
        assert!(dxs.contains(&-1) && dxs.contains(&1));
        assert_eq!(e.ty(), ElemType::U8);
    }

    #[test]
    fn lowered_expression_evaluates() {
        let p = blur_pipeline();
        let e = p.lower();
        let mut env = Env::new();
        env.insert(Buffer2D::filled("img", ElemType::U8, 32, 8, 8));
        let v = eval(&e, &EvalCtx { env: &env, x0: 4, y0: 2, lanes: p.lanes() }).unwrap();
        // Uniform input: blur of 8s = (72 + 4) >> 3 = 9... with 9 taps of 8:
        // sum = 72; (72 + 4) >> 3 = 9.
        assert_eq!(v.as_slice(), &[9; 8]);
    }

    #[test]
    fn stages_are_shareable() {
        let input = Func::input("img", ElemType::U8);
        let a = Func::define({
            let input = input.clone();
            move |x, y| max(input.at(x, y), input.at(x + 1, y))
        });
        // Two consumers of the same stage.
        let e1 = a.at(0, 0);
        let e2 = a.at(0, 1);
        assert_ne!(e1, e2);
        assert_eq!(analysis::loads(&e1).len(), 2);
    }
}
