//! S-expression serialization of the IR.
//!
//! The paper's implementation exchanges expressions between the Halide
//! compiler (C++) and the synthesis engine (Racket) as S-expressions, with
//! a parser on each side (§6). This module is that bridge: a compact
//! canonical S-expression form with a printer and a parser that round-trip
//! exactly.
//!
//! # Grammar
//!
//! ```text
//! expr := (load <buffer> <ty> <dx> <dy>)
//!       | (bcast <value> <ty>)
//!       | (bcast-load <buffer> <x> <dy> <ty>)
//!       | (cast <ty> expr) | (sat-cast <ty> expr)
//!       | (add expr expr) | (sub expr expr) | (mul expr expr)
//!       | (min expr expr) | (max expr expr) | (absd expr expr)
//!       | (shl expr <n>)  | (shr expr <n>)
//! ty   := u8 | i8 | u16 | i16 | u32 | i32
//! ```
//!
//! # Example
//!
//! ```
//! use halide_ir::builder::*;
//! use halide_ir::sexpr;
//! use lanes::ElemType;
//!
//! let e = add(widen(load("in", ElemType::U8, -1, 0)), bcast(2, ElemType::U16));
//! let text = sexpr::to_sexpr(&e);
//! assert_eq!(text, "(add (cast u16 (load in u8 -1 0)) (bcast 2 u16))");
//! assert_eq!(sexpr::parse(&text)?, e);
//! # Ok::<(), halide_ir::sexpr::ParseError>(())
//! ```

use std::fmt;

use lanes::ElemType;

use crate::expr::{BinOp, BroadcastLoad, Cast, Expr, Load, ShiftDir};

/// Serialize an expression to its canonical S-expression.
pub fn to_sexpr(e: &Expr) -> String {
    let mut s = String::new();
    write_sexpr(e, &mut s);
    s
}

fn write_sexpr(e: &Expr, out: &mut String) {
    use std::fmt::Write;
    match e {
        Expr::Load(l) => {
            let _ = write!(out, "(load {} {} {} {})", l.buffer, l.ty, l.dx, l.dy);
        }
        Expr::Broadcast(b) => {
            let _ = write!(out, "(bcast {} {})", b.value, b.ty);
        }
        Expr::BroadcastLoad(b) => {
            let _ = write!(out, "(bcast-load {} {} {} {})", b.buffer, b.x, b.dy, b.ty);
        }
        Expr::Cast(c) => {
            let head = if c.saturating { "sat-cast" } else { "cast" };
            let _ = write!(out, "({head} {} ", c.to);
            write_sexpr(&c.arg, out);
            out.push(')');
        }
        Expr::Binary(b) => {
            let head = match b.op {
                BinOp::Add => "add",
                BinOp::Sub => "sub",
                BinOp::Mul => "mul",
                BinOp::Min => "min",
                BinOp::Max => "max",
                BinOp::Absd => "absd",
            };
            let _ = write!(out, "({head} ");
            write_sexpr(&b.lhs, out);
            out.push(' ');
            write_sexpr(&b.rhs, out);
            out.push(')');
        }
        Expr::Shift(s) => {
            let head = match s.dir {
                ShiftDir::Left => "shl",
                ShiftDir::Right => "shr",
            };
            let _ = write!(out, "({head} ");
            write_sexpr(&s.arg, out);
            let _ = write!(out, " {})", s.amount);
        }
    }
}

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    Atom(String),
}

fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' => {
                tokens.push((i, Token::Open));
                i += 1;
            }
            b')' => {
                tokens.push((i, Token::Close));
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            _ => {
                let start = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && bytes[i] != b'('
                    && bytes[i] != b')'
                {
                    i += 1;
                }
                tokens.push((start, Token::Atom(input[start..i].to_owned())));
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let offset = self.tokens.get(self.pos).map(|(o, _)| *o).unwrap_or(self.len);
        Err(ParseError { offset, message: message.into() })
    }

    fn next(&mut self) -> Result<&(usize, Token), ParseError> {
        let pos = self.pos;
        if pos >= self.tokens.len() {
            return Err(ParseError { offset: self.len, message: "unexpected end of input".into() });
        }
        self.pos += 1;
        Ok(&self.tokens[pos])
    }

    fn expect_open(&mut self) -> Result<(), ParseError> {
        match self.next()? {
            (_, Token::Open) => Ok(()),
            (o, t) => Err(ParseError { offset: *o, message: format!("expected `(`, got {t:?}") }),
        }
    }

    fn expect_close(&mut self) -> Result<(), ParseError> {
        match self.next()? {
            (_, Token::Close) => Ok(()),
            (o, t) => Err(ParseError { offset: *o, message: format!("expected `)`, got {t:?}") }),
        }
    }

    fn atom(&mut self) -> Result<(usize, String), ParseError> {
        match self.next()? {
            (o, Token::Atom(a)) => Ok((*o, a.clone())),
            (o, t) => Err(ParseError { offset: *o, message: format!("expected atom, got {t:?}") }),
        }
    }

    fn ty(&mut self) -> Result<ElemType, ParseError> {
        let (o, a) = self.atom()?;
        ElemType::ALL
            .into_iter()
            .find(|t| t.name() == a)
            .ok_or(ParseError { offset: o, message: format!("unknown element type `{a}`") })
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        let (o, a) = self.atom()?;
        a.parse::<i64>()
            .map_err(|_| ParseError { offset: o, message: format!("expected integer, got `{a}`") })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.expect_open()?;
        let (head_off, head) = self.atom()?;
        let e = match head.as_str() {
            "load" => {
                let (_, buffer) = self.atom()?;
                let ty = self.ty()?;
                let dx = self.int()? as i32;
                let dy = self.int()? as i32;
                Expr::Load(Load { buffer, dx, dy, ty })
            }
            "bcast" => {
                let value = self.int()?;
                let ty = self.ty()?;
                Expr::broadcast(value, ty).map_err(|e| ParseError {
                    offset: head_off,
                    message: e.to_string(),
                })?
            }
            "bcast-load" => {
                let (_, buffer) = self.atom()?;
                let x = self.int()? as i32;
                let dy = self.int()? as i32;
                let ty = self.ty()?;
                Expr::BroadcastLoad(BroadcastLoad { buffer, x, dy, ty })
            }
            "cast" | "sat-cast" => {
                let to = self.ty()?;
                let arg = self.expr()?;
                Expr::Cast(Cast { to, saturating: head == "sat-cast", arg: Box::new(arg) })
            }
            "add" | "sub" | "mul" | "min" | "max" | "absd" => {
                let op = match head.as_str() {
                    "add" => BinOp::Add,
                    "sub" => BinOp::Sub,
                    "mul" => BinOp::Mul,
                    "min" => BinOp::Min,
                    "max" => BinOp::Max,
                    _ => BinOp::Absd,
                };
                let lhs = self.expr()?;
                let rhs = self.expr()?;
                Expr::binary(op, lhs, rhs).map_err(|e| ParseError {
                    offset: head_off,
                    message: e.to_string(),
                })?
            }
            "shl" | "shr" => {
                let arg = self.expr()?;
                let amount = self.int()? as u32;
                let dir = if head == "shl" { ShiftDir::Left } else { ShiftDir::Right };
                Expr::shift(dir, arg, amount).map_err(|e| ParseError {
                    offset: head_off,
                    message: e.to_string(),
                })?
            }
            other => {
                return Err(ParseError {
                    offset: head_off,
                    message: format!("unknown operator `{other}`"),
                })
            }
        };
        self.expect_close()?;
        Ok(e)
    }
}

/// Parse a canonical S-expression into an IR expression.
///
/// # Errors
///
/// Returns [`ParseError`] with a byte offset on malformed input, unknown
/// operators/types, or type-rule violations.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, len: input.len() };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return p.err("trailing input after expression");
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    fn roundtrip(e: &Expr) {
        let text = to_sexpr(e);
        let back = parse(&text).unwrap_or_else(|err| panic!("reparse `{text}`: {err}"));
        assert_eq!(&back, e, "round-trip failed for `{text}`");
    }

    #[test]
    fn roundtrips_all_node_kinds() {
        roundtrip(&load("in", ElemType::U8, -3, 2));
        roundtrip(&bcast(-5, ElemType::I16));
        roundtrip(&bcast_load("w", 4, -1, ElemType::U16));
        roundtrip(&cast(ElemType::U16, load("in", ElemType::U8, 0, 0)));
        roundtrip(&sat_cast(ElemType::U8, load("in", ElemType::I16, 0, 0)));
        roundtrip(&shl(load("in", ElemType::U16, 0, 0), 3));
        roundtrip(&shr(load("in", ElemType::I32, 0, 0), 7));
        for op in ["add", "sub", "mul", "min", "max", "absd"] {
            let a = load("a", ElemType::I16, 0, 0);
            let b = load("b", ElemType::I16, 1, 0);
            let e = match op {
                "add" => add(a, b),
                "sub" => sub(a, b),
                "mul" => mul(a, b),
                "min" => min(a, b),
                "max" => max(a, b),
                _ => absd(a, b),
            };
            roundtrip(&e);
        }
    }

    #[test]
    fn roundtrips_workloads() {
        for w in [
            crate::builder::add(
                widen(load("in", ElemType::U8, -1, 0)),
                mul(widen(load("in", ElemType::U8, 0, 0)), bcast(2, ElemType::U16)),
            ),
            sat_cast(
                ElemType::U8,
                shr(
                    crate::builder::add(
                        absd(load("a", ElemType::U16, 0, 0), load("b", ElemType::U16, 0, 0)),
                        bcast(8, ElemType::U16),
                    ),
                    4,
                ),
            ),
        ] {
            roundtrip(&w);
        }
    }

    #[test]
    fn reports_errors_with_offsets() {
        let err = parse("(frobnicate 1 2)").unwrap_err();
        assert!(err.message.contains("unknown operator"));
        assert_eq!(err.offset, 1);

        let err = parse("(load in u9 0 0)").unwrap_err();
        assert!(err.message.contains("unknown element type"));

        let err = parse("(add (load a u8 0 0) (load b u16 0 0))").unwrap_err();
        assert!(err.message.contains("mismatched types"));

        let err = parse("(add (load a u8 0 0)").unwrap_err();
        assert!(err.message.contains("unexpected end of input"));

        let err = parse("(bcast 300 u8)").unwrap_err();
        assert!(err.message.contains("does not fit"));

        let err = parse("(load a u8 0 0) garbage").unwrap_err();
        assert!(err.message.contains("trailing input"));
    }

    #[test]
    fn whitespace_is_insignificant() {
        let e = parse("  ( add\n(load in u8 0 0)\t(load in u8 1 0) ) ").unwrap();
        assert_eq!(e.ty(), ElemType::U8);
    }
}
