//! Pretty-printing in the paper's Figure-3 notation.

use std::fmt;

use crate::expr::{BinOp, Expr, ShiftDir};

fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary(b) => match b.op {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul => 2,
            // min/max/absd print as calls, which never need parens.
            BinOp::Min | BinOp::Max | BinOp::Absd => 9,
        },
        Expr::Shift(_) => 0,
        _ => 9,
    }
}

fn fmt_with_parens(e: &Expr, parent: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if precedence(e) < parent {
        write!(f, "(")?;
        fmt_expr(e, f)?;
        write!(f, ")")
    } else {
        fmt_expr(e, f)
    }
}

fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Load(l) => {
            write!(f, "{}(x", l.buffer)?;
            if l.dx != 0 {
                write!(f, " {} {}", if l.dx < 0 { "-" } else { "+" }, l.dx.abs())?;
            }
            write!(f, ", y")?;
            if l.dy != 0 {
                write!(f, " {} {}", if l.dy < 0 { "-" } else { "+" }, l.dy.abs())?;
            }
            write!(f, ")")
        }
        Expr::Broadcast(b) => write!(f, "x({})", b.value),
        Expr::BroadcastLoad(b) => write!(f, "x({}({}, y + {}))", b.buffer, b.x, b.dy),
        Expr::Cast(c) => {
            let kind = if c.saturating { "sat_" } else { "" };
            let name = match c.to.name() {
                n if c.to.is_signed() => format!("int{}", &n[1..]),
                n => format!("uint{}", &n[1..]),
            };
            write!(f, "{kind}{name}x(")?;
            fmt_expr(&c.arg, f)?;
            write!(f, ")")
        }
        Expr::Binary(b) => match b.op {
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                let p = precedence(e);
                fmt_with_parens(&b.lhs, p, f)?;
                write!(f, " {} ", b.op.name())?;
                // Right operand needs parens at equal precedence for the
                // non-associative ops (`-`).
                fmt_with_parens(&b.rhs, p + u8::from(b.op == BinOp::Sub), f)
            }
            BinOp::Min | BinOp::Max | BinOp::Absd => {
                write!(f, "{}(", b.op.name())?;
                fmt_expr(&b.lhs, f)?;
                write!(f, ", ")?;
                fmt_expr(&b.rhs, f)?;
                write!(f, ")")
            }
        },
        Expr::Shift(s) => {
            fmt_with_parens(&s.arg, 1, f)?;
            let sym = match s.dir {
                ShiftDir::Left => "<<",
                ShiftDir::Right => ">>",
            };
            write!(f, " {sym} {}", s.amount)
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::*;
    use lanes::ElemType;

    #[test]
    fn figure3_style() {
        let e = add(
            widen(load("input", ElemType::U8, -1, -1)),
            mul(widen(load("input", ElemType::U8, 0, -1)), bcast(2, ElemType::U16)),
        );
        assert_eq!(
            e.to_string(),
            "uint16x(input(x - 1, y - 1)) + uint16x(input(x, y - 1)) * x(2)"
        );
    }

    #[test]
    fn parens_only_where_needed() {
        let a = load("a", ElemType::I16, 0, 0);
        let b = load("b", ElemType::I16, 0, 0);
        let e = mul(add(a.clone(), b.clone()), sub(a.clone(), b.clone()));
        assert_eq!(e.to_string(), "(a(x, y) + b(x, y)) * (a(x, y) - b(x, y))");
        let e = sub(sub(a.clone(), b.clone()), a.clone());
        assert_eq!(e.to_string(), "a(x, y) - b(x, y) - a(x, y)");
        let e = sub(a.clone(), sub(b, a));
        assert_eq!(e.to_string(), "a(x, y) - (b(x, y) - a(x, y))");
    }

    #[test]
    fn calls_and_shifts() {
        let e = shr(
            max(load("a", ElemType::I16, 0, 0), bcast(0, ElemType::I16)),
            4,
        );
        assert_eq!(e.to_string(), "max(a(x, y), x(0)) >> 4");
        let e = sat_cast(ElemType::U8, load("a", ElemType::I16, 2, 0));
        assert_eq!(e.to_string(), "sat_uint8x(a(x + 2, y))");
    }
}
