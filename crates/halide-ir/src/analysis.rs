//! Expression analyses: traversal, the qualifying filter, and interval
//! range analysis.
//!
//! The range analysis is what enables the paper's "semantic reasoning"
//! optimizations (§7.1.2): e.g. replacing an unfused shift+cast with HVX's
//! fused `vasr-rnd-sat` is only sound when the analysis proves the
//! intermediate cannot exceed the narrow type's range, and using the
//! unsigned-only `vmpyie` requires proving an operand non-negative.

use std::collections::{BTreeMap, BTreeSet};

use lanes::ElemType;

use crate::expr::{BinOp, Expr, Load, ShiftDir};

/// Number of AST nodes.
pub fn node_count(e: &Expr) -> usize {
    1 + e.children().iter().map(|c| node_count(c)).sum::<usize>()
}

/// Height of the AST (a leaf has depth 1).
pub fn depth(e: &Expr) -> usize {
    1 + e.children().iter().map(|c| depth(c)).max().unwrap_or(0)
}

/// Visit every node pre-order.
pub fn visit(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    for c in e.children() {
        visit(c, f);
    }
}

/// All loads in the expression, in traversal order (duplicates preserved).
pub fn loads(e: &Expr) -> Vec<Load> {
    let mut out = Vec::new();
    visit(e, &mut |n| {
        if let Expr::Load(l) = n {
            out.push(l.clone());
        }
    });
    out
}

/// Names of all buffers read by the expression, including the scalar
/// reads of [`Expr::BroadcastLoad`] nodes.
pub fn buffers_used(e: &Expr) -> BTreeSet<String> {
    buffer_types(e).into_keys().collect()
}

/// Every buffer the expression reads, mapped to its element type. Covers
/// both vector loads and runtime-scalar broadcasts; a buffer read at two
/// different element types keeps the first type seen in traversal order.
pub fn buffer_types(e: &Expr) -> BTreeMap<String, ElemType> {
    let mut out = BTreeMap::new();
    visit(e, &mut |n| match n {
        Expr::Load(l) => {
            out.entry(l.buffer.clone()).or_insert(l.ty);
        }
        Expr::BroadcastLoad(b) => {
            out.entry(b.buffer.clone()).or_insert(b.ty);
        }
        _ => {}
    });
    out
}

/// Whether Rake would attempt to optimize this expression. The paper (§7)
/// skips scalar expressions and trivial vector expressions — single
/// variables, non-strided loads and scalar broadcasts — leaving those to
/// LLVM. We qualify an expression when it contains at least one compute
/// node (binary, shift, or non-trivial cast chain).
pub fn is_qualifying(e: &Expr) -> bool {
    match e {
        Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => false,
        Expr::Cast(c) => is_qualifying(&c.arg),
        Expr::Binary(_) | Expr::Shift(_) => true,
    }
}

/// A closed integer interval `[lo, hi]` tracked in `i128` so intermediate
/// bounds can never overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: i128,
    /// Inclusive upper bound.
    pub hi: i128,
}

impl Range {
    /// The full canonical range of an element type.
    pub fn of_type(ty: ElemType) -> Range {
        Range { lo: ty.min_value() as i128, hi: ty.max_value() as i128 }
    }

    /// A single point.
    pub fn point(v: i64) -> Range {
        Range { lo: v as i128, hi: v as i128 }
    }

    /// Whether every value in the range is canonical for `ty`.
    pub fn fits(&self, ty: ElemType) -> bool {
        self.lo >= ty.min_value() as i128 && self.hi <= ty.max_value() as i128
    }

    /// Whether the range is entirely non-negative.
    pub fn is_non_negative(&self) -> bool {
        self.lo >= 0
    }

    fn add(self, o: Range) -> Range {
        Range { lo: self.lo + o.lo, hi: self.hi + o.hi }
    }

    fn sub(self, o: Range) -> Range {
        Range { lo: self.lo - o.hi, hi: self.hi - o.lo }
    }

    fn mul(self, o: Range) -> Range {
        let products = [self.lo * o.lo, self.lo * o.hi, self.hi * o.lo, self.hi * o.hi];
        Range {
            lo: products.iter().copied().min().expect("non-empty"),
            hi: products.iter().copied().max().expect("non-empty"),
        }
    }

    fn min(self, o: Range) -> Range {
        Range { lo: self.lo.min(o.lo), hi: self.hi.min(o.hi) }
    }

    fn max(self, o: Range) -> Range {
        Range { lo: self.lo.max(o.lo), hi: self.hi.max(o.hi) }
    }

    fn absd(self, o: Range) -> Range {
        // |a - b| over the rectangle.
        let d = self.sub(o);
        if d.lo >= 0 {
            d
        } else if d.hi <= 0 {
            Range { lo: -d.hi, hi: -d.lo }
        } else {
            Range { lo: 0, hi: (-d.lo).max(d.hi) }
        }
    }
}

/// Interval range analysis. Loads take the full range of the buffer element
/// type; wrap-around casts and overflowing arithmetic widen the result to
/// the full type range (a sound over-approximation).
pub fn value_range(e: &Expr) -> Range {
    match e {
        Expr::Load(l) => Range::of_type(l.ty),
        Expr::Broadcast(b) => Range::point(b.value),
        Expr::BroadcastLoad(b) => Range::of_type(b.ty),
        Expr::Cast(c) => {
            let r = value_range(&c.arg);
            if c.saturating {
                Range {
                    lo: r.lo.clamp(c.to.min_value() as i128, c.to.max_value() as i128),
                    hi: r.hi.clamp(c.to.min_value() as i128, c.to.max_value() as i128),
                }
            } else if r.fits(c.to) {
                r
            } else {
                Range::of_type(c.to)
            }
        }
        Expr::Binary(b) => {
            let ty = e.ty();
            let (lr, rr) = (value_range(&b.lhs), value_range(&b.rhs));
            let raw = match b.op {
                BinOp::Add => lr.add(rr),
                BinOp::Sub => lr.sub(rr),
                BinOp::Mul => lr.mul(rr),
                BinOp::Min => lr.min(rr),
                BinOp::Max => lr.max(rr),
                BinOp::Absd => lr.absd(rr),
            };
            if raw.fits(ty) {
                raw
            } else {
                Range::of_type(ty)
            }
        }
        Expr::Shift(s) => {
            let ty = e.ty();
            let r = value_range(&s.arg);
            let raw = match s.dir {
                ShiftDir::Left => Range { lo: r.lo << s.amount, hi: r.hi << s.amount },
                ShiftDir::Right => Range { lo: r.lo >> s.amount, hi: r.hi >> s.amount },
            };
            if raw.fits(ty) {
                raw
            } else {
                Range::of_type(ty)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::{eval, Buffer2D, Env, EvalCtx};

    #[test]
    fn counting() {
        let e = add(load("a", ElemType::U8, 0, 0), load("a", ElemType::U8, 1, 0));
        assert_eq!(node_count(&e), 3);
        assert_eq!(depth(&e), 2);
        assert_eq!(loads(&e).len(), 2);
        assert_eq!(buffers_used(&e).len(), 1);
    }

    #[test]
    fn qualifying_filter() {
        assert!(!is_qualifying(&load("a", ElemType::U8, 0, 0)));
        assert!(!is_qualifying(&bcast(3, ElemType::U8)));
        assert!(!is_qualifying(&widen(load("a", ElemType::U8, 0, 0))));
        assert!(is_qualifying(&add(
            load("a", ElemType::U8, 0, 0),
            load("a", ElemType::U8, 1, 0)
        )));
        assert!(is_qualifying(&shl(load("a", ElemType::U8, 0, 0), 1)));
    }

    #[test]
    fn range_of_widened_conv_row() {
        // u16(u8) + u16(u8)*2 + u16(u8): bound is 255 * 4 = 1020, fits u16.
        let t = || widen(load("in", ElemType::U8, 0, 0));
        let e = add(add(t(), mul(t(), bcast(2, ElemType::U16))), t());
        let r = value_range(&e);
        assert_eq!(r, Range { lo: 0, hi: 1020 });
        assert!(r.is_non_negative());
        assert!(r.fits(ElemType::U16));
        assert!(!r.fits(ElemType::U8));
    }

    #[test]
    fn range_of_rounding_shift() {
        // (x + 8) >> 4 for x in [0, 1020]: [0, 64] — fits u8, so the fused
        // saturating form is provably equivalent (the gaussian3x3 case).
        let t = || widen(load("in", ElemType::U8, 0, 0));
        let sum = add(add(t(), mul(t(), bcast(2, ElemType::U16))), t());
        let e = shr(add(sum, bcast(8, ElemType::U16)), 4);
        let r = value_range(&e);
        assert_eq!(r, Range { lo: 0, hi: 64 });
        assert!(r.fits(ElemType::U8));
    }

    #[test]
    fn overflowing_arith_widens_to_type_range() {
        let e = mul(load("a", ElemType::U8, 0, 0), load("a", ElemType::U8, 0, 0));
        assert_eq!(value_range(&e), Range::of_type(ElemType::U8));
    }

    #[test]
    fn absd_range() {
        let e = absd(load("a", ElemType::U8, 0, 0), bcast(10, ElemType::U8));
        let r = value_range(&e);
        assert_eq!(r, Range { lo: 0, hi: 245 });
    }

    #[test]
    fn saturating_cast_narrows_range() {
        let e = sat_cast(
            ElemType::U8,
            sub(bcast(0, ElemType::I16), load("a", ElemType::I16, 0, 0)),
        );
        let r = value_range(&e);
        assert!(r.fits(ElemType::U8));
    }

    /// The computed range is a sound over-approximation: evaluating on
    /// random buffers never escapes it.
    #[test]
    fn prop_range_is_sound() {
        for seed in 0u64..500 {
            let t = |dx: i32| widen(load("in", ElemType::U8, dx, 0));
            let e = shr(
                add(
                    add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1)),
                    bcast(8, ElemType::U16),
                ),
                4,
            );
            let r = value_range(&e);
            let mut env = Env::new();
            env.insert(Buffer2D::from_fn("in", ElemType::U8, 16, 1, |x, _| {
                // Cheap deterministic pseudo-random fill.
                let v = seed.wrapping_mul(6364136223846793005).wrapping_add(x as u64);
                (v >> 33) as i64
            }));
            let out = eval(&e, &EvalCtx { env: &env, x0: 4, y0: 0, lanes: 8 }).unwrap();
            for lane in out.iter() {
                assert!(lane as i128 >= r.lo && lane as i128 <= r.hi);
            }
        }
    }
}
