//! Rake: synthesis-based vector instruction selection for DSPs.
//!
//! A Rust reproduction of *"Vector Instruction Selection for Digital
//! Signal Processors using Program Synthesis"* (Ahmad, Root, Adams, Kamil,
//! Cheung — ASPLOS 2022). Given a lowered, vectorized Halide IR expression,
//! [`Rake::compile`] synthesizes a provably-equivalent HVX instruction
//! sequence in three stages:
//!
//! 1. **lift** to the Uber-Instruction IR (Algorithm 1),
//! 2. **lower** each uber-instruction through swizzle-free sketches
//!    (Algorithm 2),
//! 3. **synthesize the data movement** (loads, `valign`, layout shuffles).
//!
//! The result carries the final expression, the flattened [`Program`], the
//! lifting trace (Figure 9) and per-stage synthesis statistics (Table 1).
//!
//! # Example
//!
//! ```
//! use halide_ir::builder::*;
//! use lanes::ElemType;
//! use rake::{Rake, Target};
//!
//! // A 3-tap horizontal filter row: u16(in(x-1)) + u16(in(x))*2 + u16(in(x+1)).
//! let t = |dx| widen(load("in", ElemType::U8, dx, 0));
//! let e = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
//!
//! let rake = Rake::new(Target::hvx_small(8)); // 8-lane model for the example
//! let compiled = rake.compile(&e)?;
//! assert!(compiled.hvx.to_string().contains("vtmpy"));
//! # Ok::<(), rake::CompileError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use halide_ir::Expr;
use hvx::{HvxExpr, Program};
use synth::{lift_expr_cancellable, lower_expr, LiftTrace, LoweringOptions, SynthStats, Verifier};
use uber_ir::UberExpr;

/// The compilation target: vector geometry of the HVX-style machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Vectorization width in lanes (what the schedule chose).
    pub lanes: usize,
    /// Machine register width in bytes.
    pub vec_bytes: usize,
}

impl Target {
    /// Full-width HVX: 128-byte (1024-bit) registers, 128-lane tiles.
    pub fn hvx() -> Target {
        Target { lanes: 128, vec_bytes: 128 }
    }

    /// Full-width HVX registers with a narrower vectorization (used by
    /// benchmarks whose accumulators are 32-bit, so a tile still fits a
    /// register pair).
    pub fn hvx_with_lanes(lanes: usize) -> Target {
        Target { lanes, vec_bytes: 128 }
    }

    /// A scaled-down machine for fast tests and doc examples.
    pub fn hvx_small(lanes: usize) -> Target {
        Target { lanes, vec_bytes: lanes }
    }
}

/// Why compilation declined or failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The expression is trivial (plain load/broadcast); Rake leaves these
    /// to LLVM (§7).
    NotQualifying,
    /// No verified lifting to the Uber-Instruction IR was found.
    LiftFailed,
    /// No verified lowering to the target ISA was found.
    LowerFailed,
    /// The final end-to-end equivalence check failed (would indicate a bug
    /// in the synthesis engine; surfaced rather than silently miscompiled).
    FinalCheckFailed,
    /// Synthesis was cut short by the configured wall-clock deadline
    /// ([`LoweringOptions::deadline`]). Unlike [`CompileError::LiftFailed`]
    /// and [`CompileError::LowerFailed`], this does not prove the
    /// expression uncompilable — a retry with more time may succeed.
    DeadlineExceeded,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotQualifying => write!(f, "expression is trivial; left to LLVM"),
            CompileError::LiftFailed => write!(f, "no verified lifting found"),
            CompileError::LowerFailed => write!(f, "no verified lowering found"),
            CompileError::FinalCheckFailed => {
                write!(f, "final end-to-end equivalence check failed")
            }
            CompileError::DeadlineExceeded => {
                write!(f, "synthesis deadline exceeded before a result was found")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A successful compilation.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The lifted Uber-Instruction IR expression.
    pub uber: UberExpr,
    /// The synthesized HVX expression (natural output order).
    pub hvx: HvxExpr,
    /// The flattened, CSE'd instruction program.
    pub program: Program,
    /// Accepted lifting steps (the Figure 9 demonstration).
    pub trace: LiftTrace,
    /// Per-stage query counts and times (Table 1).
    pub stats: SynthStats,
}

/// The synthesis-based instruction selector.
#[derive(Debug, Clone)]
pub struct Rake {
    target: Target,
    verifier: Verifier,
    options: LoweringOptions,
}

impl Rake {
    /// An instruction selector for the given target, with default search
    /// options (backtracking and layout exploration on).
    pub fn new(target: Target) -> Rake {
        let verifier = Verifier {
            lanes: target.lanes,
            vec_bytes: target.vec_bytes,
            ..Verifier::default()
        };
        let options = LoweringOptions {
            lanes: target.lanes,
            vec_bytes: target.vec_bytes,
            ..LoweringOptions::default()
        };
        Rake { target, verifier, options }
    }

    /// Override the lowering search options (ablations).
    pub fn with_options(mut self, options: LoweringOptions) -> Rake {
        self.options = LoweringOptions {
            lanes: self.target.lanes,
            vec_bytes: self.target.vec_bytes,
            ..options
        };
        self
    }

    /// Override the verification effort.
    pub fn with_verifier(mut self, verifier: Verifier) -> Rake {
        self.verifier = Verifier {
            lanes: self.target.lanes,
            vec_bytes: self.target.vec_bytes,
            ..verifier
        };
        self
    }

    /// The compilation target.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The lowering search options in effect.
    pub fn options(&self) -> LoweringOptions {
        self.options
    }

    /// The verification effort in effect.
    pub fn verifier(&self) -> &Verifier {
        &self.verifier
    }

    /// Compile one qualifying Halide IR vector expression to HVX.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the expression is trivial, when either
    /// synthesis stage finds no verified candidate, or when the final
    /// end-to-end check fails.
    pub fn compile(&self, e: &Expr) -> Result<Compiled, CompileError> {
        if !halide_ir::analysis::is_qualifying(e) {
            return Err(CompileError::NotQualifying);
        }
        let mut stats = SynthStats::default();
        let memo_before = self.verifier.memo_snapshot();
        let lifted = lift_expr_cancellable(
            e,
            &self.verifier,
            self.options.deadline,
            self.options.cancel,
            self.options.max_lift_depth,
            &mut stats,
        );
        let Some((uber, trace)) = lifted else {
            return Err(if stats.deadline_exceeded {
                CompileError::DeadlineExceeded
            } else {
                CompileError::LiftFailed
            });
        };
        let Some(hvx) = lower_expr(&uber, &self.verifier, self.options, &mut stats) else {
            return Err(if stats.deadline_exceeded {
                CompileError::DeadlineExceeded
            } else {
                CompileError::LowerFailed
            });
        };
        // The verifier's geometry was pinned to the target in the
        // constructors, so it is used directly for the final check.
        {
            let mut sp = trace::span("verify.final", "verify");
            if !self.verifier.equiv_halide_hvx(e, &hvx) {
                sp.arg("passed", false);
                return Err(CompileError::FinalCheckFailed);
            }
            sp.arg("passed", true);
        }
        let program = hvx.to_program();
        // Attribute the verifier's memo/SMT counter movement to this
        // compilation (exact when the Rake instance compiles one
        // expression at a time, which is how the driver uses it).
        let memo = self.verifier.memo_snapshot().delta_since(&memo_before);
        stats.smt_queries += memo.smt_queries;
        stats.smt_time += memo.smt_time();
        stats.verdict_cache_hits += memo.verdict_hits;
        stats.env_cache_hits += memo.env_hits;
        Ok(Compiled { uber, hvx, program, trace, stats })
    }

    /// Compile every qualifying expression of a pipeline, collecting the
    /// per-expression outcomes and merged statistics — Rake's "patch the
    /// lowered program" step (§2.2).
    ///
    /// Structurally identical expressions are synthesized once: repeats
    /// reuse the first outcome and count as [`SynthStats::cache_hits`].
    /// The per-expression outcomes and skip/fail counts are unaffected.
    pub fn compile_pipeline(&self, exprs: &[Expr]) -> PipelineReport {
        let mut report = PipelineReport::default();
        let mut memo: HashMap<&Expr, Result<Compiled, CompileError>> = HashMap::new();
        for e in exprs {
            let (outcome, hit) = match memo.get(e) {
                Some(cached) => (cached.clone(), true),
                None => {
                    let fresh = self.compile(e);
                    memo.insert(e, fresh.clone());
                    (fresh, false)
                }
            };
            if hit {
                // Reused outcome: no new queries, just a cache hit.
                report.stats.cache_hits += 1;
            } else if let Ok(ref c) = outcome {
                report.stats.merge(&c.stats);
            }
            match outcome {
                Ok(c) => report.compiled.push((e.clone(), Some(c))),
                Err(err) => {
                    report.skipped += usize::from(err == CompileError::NotQualifying);
                    report.failed += usize::from(err != CompileError::NotQualifying);
                    report.compiled.push((e.clone(), None));
                }
            }
        }
        report
    }
}

/// Outcome of compiling a set of pipeline expressions.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Each input expression with its compilation (if any).
    pub compiled: Vec<(Expr, Option<Compiled>)>,
    /// Expressions skipped as trivial.
    pub skipped: usize,
    /// Qualifying expressions with no verified implementation.
    pub failed: usize,
    /// Merged synthesis statistics.
    pub stats: SynthStats,
}

impl PipelineReport {
    /// Number of expressions Rake successfully optimized.
    pub fn optimized(&self) -> usize {
        self.compiled.iter().filter(|(_, c)| c.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder::*;
    use lanes::ElemType;

    fn rake8() -> Rake {
        Rake::new(Target::hvx_small(8)).with_verifier(Verifier::fast())
    }

    #[test]
    fn compiles_conv_row_to_vtmpy() {
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let e = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
        let c = rake8().compile(&e).expect("must compile");
        assert!(c.hvx.to_string().contains("vtmpy"), "got:\n{}", c.hvx);
        assert!(c.stats.lifting_queries > 0);
        assert!(c.stats.sketching_queries > 0);
        assert!(!c.trace.steps.is_empty());
        assert!(c.program.len() >= 3);
    }

    #[test]
    fn rejects_trivial_exprs() {
        assert_eq!(
            rake8().compile(&load("in", ElemType::U8, 0, 0)).unwrap_err(),
            CompileError::NotQualifying
        );
        assert_eq!(
            rake8().compile(&bcast(3, ElemType::U8)).unwrap_err(),
            CompileError::NotQualifying
        );
    }

    #[test]
    fn gaussian_tail_uses_fused_narrow() {
        // u8((row + 8) >> 4) — must compile to vasr-narrow:rnd:sat.
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let row = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
        let e = cast(ElemType::U8, shr(add(row, bcast(8, ElemType::U16)), 4));
        let c = rake8().compile(&e).expect("must compile");
        let text = c.hvx.to_string();
        assert!(text.contains("vasr-narrow:rnd:sat"), "got:\n{text}");
        assert!(text.contains("vtmpy"), "got:\n{text}");
        // Fused narrow consumes the deinterleaved pair: no shuffle at all.
        assert!(!text.contains("vshuffvdd"), "got:\n{text}");
    }

    #[test]
    fn pipeline_report_aggregates() {
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let exprs = vec![
            add(t(0), t(1)),
            load("in", ElemType::U8, 0, 0), // trivial
            absd(load("a", ElemType::U8, 0, 0), load("b", ElemType::U8, 0, 0)),
        ];
        let report = rake8().compile_pipeline(&exprs);
        assert_eq!(report.optimized(), 2);
        assert_eq!(report.skipped, 1);
        assert_eq!(report.failed, 0);
        assert!(report.stats.lifting_queries > 0);
    }

    #[test]
    fn pipeline_dedupes_identical_exprs() {
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let e1 = add(t(0), t(1));
        let e2 = absd(load("a", ElemType::U8, 0, 0), load("b", ElemType::U8, 0, 0));
        let exprs = vec![e1.clone(), e1.clone(), e2, e1];
        let report = rake8().compile_pipeline(&exprs);
        assert_eq!(report.optimized(), 4);
        assert_eq!(report.stats.cache_hits, 2);
        // The duplicates reuse the first compilation's result verbatim.
        let texts: Vec<String> = report
            .compiled
            .iter()
            .filter(|(e, _)| *e == exprs[0])
            .map(|(_, c)| c.as_ref().unwrap().hvx.to_string())
            .collect();
        assert_eq!(texts.len(), 3);
        assert!(texts.iter().all(|t| t == &texts[0]));
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        let opts = LoweringOptions {
            deadline: Some(std::time::Instant::now()),
            ..LoweringOptions::default()
        };
        let rake = rake8().with_options(opts);
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let e = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
        assert_eq!(rake.compile(&e).unwrap_err(), CompileError::DeadlineExceeded);
    }

    #[test]
    fn compiles_with_symbolic_lowering_proofs() {
        // Every lowering step proved by the symbolic HVX executor.
        let rake = Rake::new(Target::hvx_small(8))
            .with_verifier(Verifier { smt_lowering: true, ..Verifier::fast() });
        let t = |dx| widen(load("in", ElemType::U8, dx, 0));
        let e = add(add(t(-1), mul(t(0), bcast(2, ElemType::U16))), t(1));
        let c = rake.compile(&e).expect("must compile under smt_lowering");
        assert!(c.hvx.to_string().contains("vtmpy"), "got:\n{}", c.hvx);
    }

    #[test]
    fn compiled_program_runs_and_matches_ir() {
        use halide_ir::{Buffer2D, Env, EvalCtx};
        let e = absd(load("a", ElemType::U8, 0, 0), load("a", ElemType::U8, 1, 0));
        let c = rake8().compile(&e).expect("must compile");
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("a", ElemType::U8, 32, 1, |x, _| (x * x % 251) as i64));
        let want = halide_ir::eval(&e, &EvalCtx { env: &env, x0: 4, y0: 0, lanes: 8 }).unwrap();
        let got = c.program.run(&env, 4, 0, 8).unwrap();
        assert_eq!(got.typed_lanes(ElemType::U8), want);
    }
}
