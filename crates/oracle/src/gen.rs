//! Seeded generation of well-typed random vector expressions.
//!
//! The 21 workloads cover the patterns the paper measures, but the space of
//! expressions the selector accepts is far larger. This generator draws
//! qualifying expressions from that space: every node is type-correct by
//! construction, constants come from the boundary-biased [`Sampler`], and a
//! dedicated production emits the rounding-narrow idiom
//! `cast(narrow, (x + (1 << (k-1))) >> k)` — the pattern most likely to
//! expose wrap-versus-full-precision disagreements.

use halide_ir::{BinOp, Binary, Broadcast, Cast, Expr, Load, Shift, ShiftDir};
use lanes::rng::Rng;
use lanes::ElemType;

use crate::sampling::Sampler;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Upper bound on AST nodes per expression.
    pub max_nodes: usize,
    /// Buffers expressions may load from (name, element type).
    pub buffers: Vec<(String, ElemType)>,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_nodes: 24,
            buffers: vec![
                ("a".to_owned(), ElemType::U8),
                ("b".to_owned(), ElemType::U8),
                ("w".to_owned(), ElemType::I16),
            ],
        }
    }
}

/// Generate one qualifying, well-typed expression.
pub fn gen_expr(rng: &mut Rng, cfg: &GenConfig) -> Expr {
    loop {
        let ty = ElemType::ALL[rng.gen_range_usize(0..=ElemType::ALL.len() - 1)];
        let budget = rng.gen_range_usize(3..=cfg.max_nodes.max(3));
        let e = gen_compute(ty, budget, rng, cfg);
        // A root cast chain can bottom out in a bare leaf; those trivial
        // expressions are exactly what the selector declines, so redraw.
        if halide_ir::analysis::is_qualifying(&e) {
            return e;
        }
    }
}

/// One compute node within `budget` total nodes. Every production's node
/// count is at most `budget`: productions that need more are skipped, so
/// generated sizes never overshoot [`GenConfig::max_nodes`].
fn gen_compute(ty: ElemType, budget: usize, rng: &mut Rng, cfg: &GenConfig) -> Expr {
    let roll = rng.gen_range_usize(0..=9);
    // Binary node: split the remaining budget between the operands.
    if budget >= 3 && roll <= 4 {
        let ops = BinOp::ALL;
        let op = ops[rng.gen_range_usize(0..=ops.len() - 1)];
        let left = rng.gen_range_usize(1..=budget - 2);
        return Expr::Binary(Binary {
            op,
            lhs: Box::new(gen(ty, left, rng, cfg)),
            rhs: Box::new(gen(ty, budget - 1 - left, rng, cfg)),
        });
    }
    // The rounding-narrow idiom, when a wider type exists.
    if budget >= 5 && (7..=8).contains(&roll) {
        if let Some(wide) = ty.widened() {
            return rounding_narrow(ty, wide, budget, rng, cfg);
        }
    }
    // Shift by an in-range immediate.
    if roll <= 6 {
        let dir = if rng.gen_bool(0.5) { ShiftDir::Left } else { ShiftDir::Right };
        let amount = rng.gen_range(0..=i64::from(ty.bits() - 1)) as u32;
        return Expr::Shift(Shift {
            dir,
            amount,
            arg: Box::new(gen(ty, budget.saturating_sub(1).max(1), rng, cfg)),
        });
    }
    gen_cast(ty, budget, rng, cfg)
}

/// `cast(ty, (wide_expr + bcast(1 << (k-1))) >> k)` — the fused-narrow
/// source pattern.
fn rounding_narrow(
    ty: ElemType,
    wide: ElemType,
    budget: usize,
    rng: &mut Rng,
    cfg: &GenConfig,
) -> Expr {
    let k = rng.gen_range(1..=i64::from(wide.bits() / 2)) as u32;
    let inner = gen(wide, budget - 4, rng, cfg);
    let biased = Expr::Binary(Binary {
        op: BinOp::Add,
        lhs: Box::new(inner),
        rhs: Box::new(Expr::Broadcast(Broadcast { value: 1i64 << (k - 1), ty: wide })),
    });
    Expr::Cast(Cast {
        to: ty,
        saturating: rng.gen_bool(0.5),
        arg: Box::new(Expr::Shift(Shift { dir: ShiftDir::Right, amount: k, arg: Box::new(biased) })),
    })
}

fn gen_cast(ty: ElemType, budget: usize, rng: &mut Rng, cfg: &GenConfig) -> Expr {
    let others: Vec<ElemType> = ElemType::ALL.into_iter().filter(|&t| t != ty).collect();
    let src = others[rng.gen_range_usize(0..=others.len() - 1)];
    Expr::Cast(Cast {
        to: ty,
        saturating: rng.gen_bool(0.5),
        arg: Box::new(gen(src, budget.saturating_sub(1).max(1), rng, cfg)),
    })
}

fn gen(ty: ElemType, budget: usize, rng: &mut Rng, cfg: &GenConfig) -> Expr {
    if budget <= 1 {
        return leaf(ty, rng, cfg);
    }
    gen_compute(ty, budget, rng, cfg)
}

fn leaf(ty: ElemType, rng: &mut Rng, cfg: &GenConfig) -> Expr {
    let candidates: Vec<&(String, ElemType)> =
        cfg.buffers.iter().filter(|(_, t)| *t == ty).collect();
    if !candidates.is_empty() && rng.gen_bool(0.75) {
        let (name, _) = candidates[rng.gen_range_usize(0..=candidates.len() - 1)];
        Expr::Load(Load {
            buffer: name.clone(),
            dx: rng.gen_range(-2..=2) as i32,
            dy: rng.gen_range(-1..=1) as i32,
            ty,
        })
    } else {
        // Boundary-biased constant.
        let value = Sampler::new(ty).draw(rng);
        Expr::Broadcast(Broadcast { value, ty })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::analysis;

    #[test]
    fn generated_exprs_are_well_typed_qualifying_and_bounded() {
        let cfg = GenConfig::default();
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..300 {
            let e = gen_expr(&mut rng, &cfg);
            assert!(analysis::is_qualifying(&e), "{e:?}");
            assert!(analysis::node_count(&e) <= cfg.max_nodes, "{e:?}");
            // Type-correctness: the interpreter accepts it.
            let oracle = crate::Oracle::default();
            for env in oracle.envs_for(&e).iter().take(1) {
                let ctx = halide_ir::EvalCtx { env, x0: 0, y0: 0, lanes: 4 };
                assert!(halide_ir::eval(&e, &ctx).is_ok(), "{e:?}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        let a: Vec<Expr> = {
            let mut rng = Rng::seed_from_u64(9);
            (0..20).map(|_| gen_expr(&mut rng, &cfg)).collect()
        };
        let b: Vec<Expr> = {
            let mut rng = Rng::seed_from_u64(9);
            (0..20).map(|_| gen_expr(&mut rng, &cfg)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrips_through_sexpr() {
        let cfg = GenConfig::default();
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..100 {
            let e = gen_expr(&mut rng, &cfg);
            let text = halide_ir::sexpr::to_sexpr(&e);
            assert_eq!(halide_ir::sexpr::parse(&text).unwrap(), e, "{text}");
        }
    }
}
