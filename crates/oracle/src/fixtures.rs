//! Deliberately broken subjects for exercising the oracle itself.
//!
//! Compiled only for tests and behind the `fixtures` cargo feature (which
//! enables `lanes/test-fixtures`): these subjects simulate a selector with
//! a known-wrong instruction model, so the detection → minimization →
//! repro pipeline can be demonstrated end-to-end without shipping a real
//! miscompile.

use halide_ir::{eval, BinOp, Env, EvalCtx, Expr, ShiftDir};
use lanes::{ElemType, Vector};

/// Match `cast(n, (widen(a) + widen(b)) >> 1)` — the widened-average
/// pattern a selector strength-reduces to `vavg`.
pub fn match_widened_avg(e: &Expr) -> Option<(&Expr, &Expr, ElemType)> {
    let Expr::Cast(c) = e else { return None };
    let Expr::Shift(s) = c.arg.as_ref() else { return None };
    if s.dir != ShiftDir::Right || s.amount != 1 {
        return None;
    }
    let Expr::Binary(b) = s.arg.as_ref() else { return None };
    if b.op != BinOp::Add {
        return None;
    }
    let (Expr::Cast(ca), Expr::Cast(cb)) = (b.lhs.as_ref(), b.rhs.as_ref()) else {
        return None;
    };
    (ca.arg.ty() == c.to && cb.arg.ty() == c.to && ca.to == cb.to)
        .then(|| (ca.arg.as_ref(), cb.arg.as_ref(), c.to))
}

/// A subject simulating a selector whose `vavg` model is the broken
/// fixture [`lanes::broken_avg`]: it wraps the sum at the narrow width
/// before shifting, dropping the carry that the real instruction's wider
/// adder keeps. Everything outside the pattern is evaluated honestly.
pub fn broken_vavg_subject(
    e: &Expr,
    env: &Env,
    x0: i64,
    y0: i64,
    lanes: usize,
) -> Option<Vector> {
    fn go(e: &Expr, ctx: &EvalCtx<'_>) -> Option<Vector> {
        if let Some((a, b, out)) = match_widened_avg(e) {
            let (va, vb) = (go(a, ctx)?, go(b, ctx)?);
            return Some(va.zip(&vb, |x, y| lanes::broken_avg(out, x, y, false)));
        }
        match e {
            Expr::Cast(c) => Some(go(&c.arg, ctx)?.cast(c.to, c.saturating)),
            Expr::Binary(b) => {
                let (l, r) = (go(&b.lhs, ctx)?, go(&b.rhs, ctx)?);
                let ty = l.ty();
                Some(match b.op {
                    BinOp::Add => l.zip(&r, |x, y| lanes::add_wrap(ty, x, y)),
                    BinOp::Sub => l.zip(&r, |x, y| lanes::sub_wrap(ty, x, y)),
                    BinOp::Mul => l.zip(&r, |x, y| lanes::mul_wrap(ty, x, y)),
                    BinOp::Min => l.zip(&r, |x, y| lanes::min(ty, x, y)),
                    BinOp::Max => l.zip(&r, |x, y| lanes::max(ty, x, y)),
                    BinOp::Absd => l.zip(&r, |x, y| lanes::absd(ty, x, y)),
                })
            }
            Expr::Shift(s) => {
                let v = go(&s.arg, ctx)?;
                let ty = v.ty();
                Some(match s.dir {
                    ShiftDir::Left => v.map(|x| lanes::shl(ty, x, s.amount)),
                    ShiftDir::Right => v.map(|x| lanes::asr(ty, x, s.amount)),
                })
            }
            _ => eval(e, ctx).ok(),
        }
    }
    go(e, &EvalCtx { env, x0, y0, lanes })
}

/// The widened-average demo expression the broken subject miscomputes,
/// with an environment of adjacent values whose sums carry past the
/// narrow type — the seed case for the `oracle_fuzz --broken` demo.
pub fn broken_avg_demo() -> (Expr, Env) {
    use halide_ir::builder as hb;
    let avg = hb::cast(
        ElemType::U8,
        hb::shr(
            hb::add(
                hb::widen(hb::load("a", ElemType::U8, 0, 0)),
                hb::widen(hb::load("a", ElemType::U8, 1, 0)),
            ),
            1,
        ),
    );
    let noise = hb::add(
        hb::mul(hb::load("a", ElemType::U8, 2, 0), hb::bcast(3, ElemType::U8)),
        hb::load("b", ElemType::U8, 0, 0),
    );
    let e = hb::max(hb::min(avg, noise.clone()), hb::absd(noise, hb::bcast(9, ElemType::U8)));
    let mut env = Env::new();
    env.insert(halide_ir::Buffer2D::from_fn("a", ElemType::U8, 32, 1, |x, _| {
        (x as i64 * 37 + 11) % 256
    }));
    env.insert(halide_ir::Buffer2D::filled("b", ElemType::U8, 32, 1, 200));
    (e, env)
}
