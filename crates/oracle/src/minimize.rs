//! Shrinking of failing differential cases.
//!
//! A raw counterexample from the fuzzer is a 20-node expression over three
//! 32×4 buffers of noise — useless for debugging. The minimizer applies
//! greedy delta debugging in two phases:
//!
//! 1. **Expression shrink**: repeatedly try to replace a subtree with one
//!    of its children (cast-wrapped if the types differ) or with `bcast(0)`,
//!    keeping any replacement that still mismatches. First-improvement
//!    restarts until a fixpoint: no single replacement keeps the failure.
//! 2. **Input shrink**: drop buffers the final expression no longer reads,
//!    then zero every buffer cell whose value is not needed to reproduce.
//!
//! The subject is re-invoked per candidate, so a subject that compiles on
//! every call should memoize internally (see `oracle_fuzz`).

use halide_ir::{analysis, eval, Binary, Broadcast, Cast, Env, EvalCtx, Expr, Shift};
use lanes::Vector;

/// The subject under test: compile-and-run an expression at one point.
/// `None` means the point cannot be executed (compilation failed there) —
/// the minimizer treats that as "not a reproduction" and backtracks.
pub type Subject<'a> = &'a dyn Fn(&Expr, &Env, i64, i64, usize) -> Option<Vector>;

/// A minimized, self-contained reproduction of one mismatch.
#[derive(Debug, Clone)]
pub struct Repro {
    /// The shrunk expression (still mismatching).
    pub expr: Expr,
    /// The shrunk environment.
    pub env: Env,
    /// Tile origin.
    pub x0: i64,
    /// Tile origin.
    pub y0: i64,
    /// Vector width.
    pub lanes: usize,
    /// Ground-truth output (Halide IR interpreter).
    pub want: Vector,
    /// The subject's output.
    pub got: Vector,
    /// Candidate evaluations spent shrinking.
    pub steps: usize,
}

/// Does `(expr, env)` still reproduce a mismatch at the pinned origin?
fn still_fails(e: &Expr, env: &Env, x0: i64, y0: i64, lanes: usize, subject: Subject) -> bool {
    let Ok(want) = eval(e, &EvalCtx { env, x0, y0, lanes }) else {
        return false;
    };
    match subject(e, env, x0, y0, lanes) {
        Some(got) => crate::first_mismatch(&want, &got).is_some(),
        None => false,
    }
}

/// Shrink a failing case to a minimal one. `expr`/`env` must mismatch at
/// `(x0, y0)` under `subject`; if they do not, they are returned as-is.
pub fn minimize(
    expr: &Expr,
    env: &Env,
    x0: i64,
    y0: i64,
    lanes: usize,
    subject: Subject,
) -> Repro {
    let mut steps = 0;
    let mut cur = expr.clone();

    // Phase 1: greedy first-improvement expression shrink.
    'outer: loop {
        let total = analysis::node_count(&cur);
        for index in 0..total {
            for cand in candidates_at(&cur, index) {
                if analysis::node_count(&cand) >= total {
                    continue;
                }
                steps += 1;
                if still_fails(&cand, env, x0, y0, lanes, subject) {
                    cur = cand;
                    continue 'outer;
                }
            }
        }
        break;
    }

    // Phase 2: input shrink. Drop unread buffers, then zero cells one at a
    // time, keeping each zero that preserves the failure.
    let used = analysis::buffer_types(&cur);
    let mut small: Env = env.iter().filter(|b| used.contains_key(b.name())).cloned().collect();
    let dropped = small.clone();
    let names: Vec<String> = small.iter().map(|b| b.name().to_owned()).collect();
    for name in names {
        let (w, h) = {
            let b = small.get(&name).expect("buffer present");
            (b.width(), b.height())
        };
        for y in 0..h {
            for x in 0..w {
                let old = small.get(&name).expect("buffer present").get(x as i64, y as i64);
                if old == 0 {
                    continue;
                }
                small.get_mut(&name).expect("buffer present").set(x, y, 0);
                steps += 1;
                if !still_fails(&cur, &small, x0, y0, lanes, subject) {
                    small.get_mut(&name).expect("buffer present").set(x, y, old);
                }
            }
        }
    }

    // Phase 3: re-verify the final pair. A tier-dependent subject (a
    // degraded driver job, a warm cache serving a different tier) can stop
    // reproducing after cell zeroing even though every individual zero was
    // re-checked at the time: each zero changes what the subject compiles,
    // and a subject whose behavior drifts between calls may no longer
    // mismatch — or no longer execute — on the accumulated result. Back
    // off to the widest environment that still reproduces (zeroed →
    // buffers-dropped → original) instead of panicking below.
    if !still_fails(&cur, &small, x0, y0, lanes, subject) {
        steps += 1;
        small = if still_fails(&cur, &dropped, x0, y0, lanes, subject) {
            dropped
        } else {
            steps += 1;
            env.clone()
        };
    }

    let want = eval(&cur, &EvalCtx { env: &small, x0, y0, lanes })
        .expect("minimized expression evaluates");
    // A drifted subject may decline the final point entirely; record the
    // ground truth on both sides rather than aborting the whole run.
    let got = subject(&cur, &small, x0, y0, lanes).unwrap_or_else(|| want.clone());
    Repro { expr: cur, env: small, x0, y0, lanes, want, got, steps }
}

/// Smaller same-typed replacements for the subtree at preorder `index`:
/// each child (cast-wrapped when the type differs) and `bcast(0)`.
fn candidates_at(e: &Expr, index: usize) -> Vec<Expr> {
    let Some(node) = nth(e, index) else {
        return Vec::new();
    };
    let ty = node.ty();
    let mut out = Vec::new();
    for child in node.children() {
        let replacement = if child.ty() == ty {
            child.clone()
        } else {
            Expr::Cast(Cast { to: ty, saturating: false, arg: Box::new(child.clone()) })
        };
        out.push(replace_at(e, index, &replacement));
    }
    if !matches!(node, Expr::Broadcast(_)) {
        out.push(replace_at(e, index, &Expr::Broadcast(Broadcast { value: 0, ty })));
    }
    out
}

/// The subtree at preorder position `index`.
fn nth(e: &Expr, index: usize) -> Option<&Expr> {
    fn walk<'a>(e: &'a Expr, index: usize, counter: &mut usize) -> Option<&'a Expr> {
        if *counter == index {
            return Some(e);
        }
        *counter += 1;
        for c in e.children() {
            if let Some(found) = walk(c, index, counter) {
                return Some(found);
            }
        }
        None
    }
    walk(e, index, &mut 0)
}

/// A copy of `e` with the subtree at preorder `index` replaced.
fn replace_at(e: &Expr, index: usize, new: &Expr) -> Expr {
    fn walk(e: &Expr, index: usize, new: &Expr, counter: &mut usize) -> Expr {
        if *counter == index {
            *counter += count(e);
            return new.clone();
        }
        *counter += 1;
        match e {
            Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => e.clone(),
            Expr::Cast(c) => Expr::Cast(Cast {
                to: c.to,
                saturating: c.saturating,
                arg: Box::new(walk(&c.arg, index, new, counter)),
            }),
            Expr::Binary(b) => {
                let lhs = walk(&b.lhs, index, new, counter);
                let rhs = walk(&b.rhs, index, new, counter);
                Expr::Binary(Binary { op: b.op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
            }
            Expr::Shift(s) => Expr::Shift(Shift {
                dir: s.dir,
                amount: s.amount,
                arg: Box::new(walk(&s.arg, index, new, counter)),
            }),
        }
    }
    fn count(e: &Expr) -> usize {
        analysis::node_count(e)
    }
    walk(e, index, new, &mut 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use lanes::ElemType;

    use crate::fixtures::{broken_avg_demo, broken_vavg_subject};

    #[test]
    fn shrinks_broken_vavg_to_minimal_repro() {
        // The faulty average buried inside a larger expression; everything
        // around it is computed correctly.
        let (e, env) = broken_avg_demo();
        let subject: Subject = &broken_vavg_subject;
        let (x0, y0, lanes) = (0, 0, 8);
        assert!(still_fails(&e, &env, x0, y0, lanes, subject), "fixture must fail");

        let repro = minimize(&e, &env, x0, y0, lanes, subject);
        // Deterministically shrinks to (at most) the 7-node avg pattern.
        assert!(
            analysis::node_count(&repro.expr) <= 10,
            "not minimal: {}",
            halide_ir::sexpr::to_sexpr(&repro.expr)
        );
        assert!(still_fails(&repro.expr, &repro.env, x0, y0, lanes, subject));
        // The unused buffer is dropped from the environment.
        assert!(repro.env.get("b").is_none());
        assert!(repro.steps > 0);

        // Determinism: the same inputs shrink to the same repro.
        let again = minimize(&e, &env, x0, y0, lanes, subject);
        assert_eq!(again.expr, repro.expr);
        assert_eq!(again.want, repro.want);
        assert_eq!(again.got, repro.got);
    }

    #[test]
    fn replace_at_preserves_preorder_indexing() {
        let e = hb::add(
            hb::mul(hb::load("a", ElemType::U8, 0, 0), hb::bcast(2, ElemType::U8)),
            hb::load("a", ElemType::U8, 1, 0),
        );
        // Index 0 is the root.
        let z = Expr::Broadcast(Broadcast { value: 0, ty: ElemType::U8 });
        assert_eq!(replace_at(&e, 0, &z), z);
        // Index 4 is the second operand of the Add (after root, mul, load, bcast).
        let swapped = replace_at(&e, 4, &z);
        assert_eq!(analysis::node_count(&swapped), 5);
        assert!(matches!(swapped, Expr::Binary(ref b) if *b.rhs == z));
    }

    /// A subject whose behavior changes mid-minimization — the shape of a
    /// driver job re-compiled at a degraded tier. The final re-verify must
    /// back off across the fallback environments instead of panicking.
    #[test]
    fn tier_drifting_subject_does_not_panic() {
        use std::cell::Cell;
        let (e, env) = broken_avg_demo();
        let calls = Cell::new(0usize);
        let drifting = |e: &Expr, env: &Env, x0: i64, y0: i64, lanes: usize| {
            let n = calls.get();
            calls.set(n + 1);
            if n < 30 {
                broken_vavg_subject(e, env, x0, y0, lanes)
            } else {
                // "Recompiled" honestly at a different tier: the mismatch
                // is gone from here on.
                eval(e, &EvalCtx { env, x0, y0, lanes }).ok()
            }
        };
        let subject: Subject = &drifting;
        let repro = minimize(&e, &env, 0, 0, 8, subject);
        assert!(repro.steps > 0);
        assert!(calls.get() > 30, "drift must have happened mid-run");
    }

    /// A subject that stops executing mid-minimization (the degraded tier
    /// declines the expression): the repro records ground truth on both
    /// sides instead of panicking on the final `subject` call.
    #[test]
    fn subject_that_stops_executing_falls_back_to_ground_truth() {
        use std::cell::Cell;
        let (e, env) = broken_avg_demo();
        let calls = Cell::new(0usize);
        let dying = |e: &Expr, env: &Env, x0: i64, y0: i64, lanes: usize| {
            let n = calls.get();
            calls.set(n + 1);
            if n < 30 {
                broken_vavg_subject(e, env, x0, y0, lanes)
            } else {
                None
            }
        };
        let subject: Subject = &dying;
        let repro = minimize(&e, &env, 0, 0, 8, subject);
        assert_eq!(repro.want, repro.got, "declined final point records ground truth");
    }

    #[test]
    fn non_failing_case_is_not_a_repro() {
        let e = hb::add(hb::load("a", ElemType::U8, 0, 0), hb::bcast(1, ElemType::U8));
        let mut env = Env::new();
        env.insert(halide_ir::Buffer2D::filled("a", ElemType::U8, 8, 1, 5));
        let honest: Subject =
            &|e, env, x0, y0, lanes| eval(e, &EvalCtx { env, x0, y0, lanes }).ok();
        assert!(!still_fails(&e, &env, 0, 0, 4, honest));
    }
}
