//! Repro artifact emission.
//!
//! Each minimized failure is written out twice:
//!
//! * `<name>.sexp` — a machine-readable S-expression carrying the
//!   expression, the tile origin, both outputs and every buffer, so the
//!   case can be replayed without this crate.
//! * `<name>.rs` — a self-contained `#[test]` function (ready to paste
//!   into a regression suite) that recompiles the expression with the full
//!   selector and asserts the program output matches the interpreter.
//!
//! Artifact names are derived from the expression hash, so re-running the
//! oracle on the same failure overwrites rather than accumulates.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::minimize::Repro;

/// Where the two artifacts landed.
#[derive(Debug, Clone)]
pub struct ReproPaths {
    /// The S-expression artifact.
    pub sexpr: PathBuf,
    /// The Rust regression test.
    pub test: PathBuf,
}

/// A stable, filesystem-safe name for a repro: a tag plus the FNV hash of
/// the expression text.
pub fn repro_name(tag: &str, r: &Repro) -> String {
    let sexpr = halide_ir::sexpr::to_sexpr(&r.expr);
    format!("{tag}_{:016x}", crate::fnv1a(sexpr.as_bytes()))
}

/// Render the S-expression artifact.
pub fn to_artifact(r: &Repro) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "(repro");
    let _ = writeln!(s, "  (expr {})", halide_ir::sexpr::to_sexpr(&r.expr));
    let _ = writeln!(s, "  (origin {} {} {})", r.x0, r.y0, r.lanes);
    let _ = writeln!(s, "  (want{})", join(r.want.iter()));
    let _ = writeln!(s, "  (got{})", join(r.got.iter()));
    for b in r.env.iter() {
        let _ = write!(s, "  (buffer {} {} {} {}", b.name(), b.elem(), b.width(), b.height());
        let cells =
            (0..b.height()).flat_map(|y| (0..b.width()).map(move |x| b.get(x as i64, y as i64)));
        let _ = writeln!(s, "{})", join(cells));
    }
    s.push_str(")\n");
    s
}

/// Render the self-contained Rust regression test.
pub fn to_rust_test(name: &str, r: &Repro) -> String {
    let sexpr = halide_ir::sexpr::to_sexpr(&r.expr);
    let mut s = String::new();
    let _ = writeln!(s, "// Minimized by rake-oracle: the compiled HVX program disagreed with");
    let _ = writeln!(s, "// the Halide IR interpreter on this case before the fix.");
    let _ = writeln!(s, "#[test]");
    let _ = writeln!(s, "fn repro_{name}() {{");
    let _ = writeln!(s, "    use halide_ir::{{Buffer2D, Env, EvalCtx}};");
    let _ = writeln!(s, "    use rake::{{Rake, Target}};");
    let _ = writeln!(s);
    let _ = writeln!(s, "    let e = halide_ir::sexpr::parse({sexpr:?}).unwrap();");
    let _ = writeln!(s, "    let mut env = Env::new();");
    for b in r.env.iter() {
        let cells: Vec<String> = (0..b.height())
            .flat_map(|y| (0..b.width()).map(move |x| b.get(x as i64, y as i64).to_string()))
            .collect();
        let _ = writeln!(s, "    let data: &[i64] = &[{}];", cells.join(", "));
        let _ = writeln!(
            s,
            "    env.insert(Buffer2D::from_fn({:?}, lanes::ElemType::{}, {}, {}, |x, y| data[y * {} + x]));",
            b.name(),
            variant(b.elem()),
            b.width(),
            b.height(),
            b.width(),
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "    let c = Rake::new(Target::hvx_small({})).compile(&e).expect(\"compiles\");",
        r.lanes
    );
    let _ = writeln!(
        s,
        "    let ctx = EvalCtx {{ env: &env, x0: {}, y0: {}, lanes: {} }};",
        r.x0, r.y0, r.lanes
    );
    let _ = writeln!(s, "    let want = halide_ir::eval(&e, &ctx).unwrap();");
    let _ = writeln!(
        s,
        "    let got = c.program.run(&env, {}, {}, {}).unwrap().typed_lanes(e.ty());",
        r.x0, r.y0, r.lanes
    );
    let _ = writeln!(s, "    assert_eq!(got, want);");
    let _ = writeln!(s, "}}");
    s
}

/// Write both artifacts under `dir` (created if missing).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn emit(dir: &Path, tag: &str, r: &Repro) -> std::io::Result<ReproPaths> {
    std::fs::create_dir_all(dir)?;
    let name = repro_name(tag, r);
    let sexpr = dir.join(format!("{name}.sexp"));
    let test = dir.join(format!("{name}.rs"));
    std::fs::write(&sexpr, to_artifact(r))?;
    std::fs::write(&test, to_rust_test(&name, r))?;
    Ok(ReproPaths { sexpr, test })
}

fn join(vals: impl Iterator<Item = i64>) -> String {
    let mut s = String::new();
    for v in vals {
        let _ = write!(s, " {v}");
    }
    s
}

/// The `ElemType` variant name for generated code.
fn variant(ty: lanes::ElemType) -> &'static str {
    match ty {
        lanes::ElemType::U8 => "U8",
        lanes::ElemType::I8 => "I8",
        lanes::ElemType::U16 => "U16",
        lanes::ElemType::I16 => "I16",
        lanes::ElemType::U32 => "U32",
        lanes::ElemType::I32 => "I32",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use halide_ir::{Buffer2D, Env, EvalCtx};
    use lanes::{ElemType, Vector};

    fn sample_repro() -> Repro {
        let e = hb::add(hb::load("a", ElemType::U8, 0, 0), hb::bcast(1, ElemType::U8));
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("a", ElemType::U8, 4, 1, |x, _| x as i64 * 3));
        let want = halide_ir::eval(&e, &EvalCtx { env: &env, x0: 0, y0: 0, lanes: 4 }).unwrap();
        let got = Vector::from_fn(ElemType::U8, 4, |i| want.get(i) ^ 1);
        Repro { expr: e, env, x0: 0, y0: 0, lanes: 4, want, got, steps: 1 }
    }

    #[test]
    fn artifact_contains_expr_origin_and_buffers() {
        let text = to_artifact(&sample_repro());
        assert!(text.contains("(expr (add"), "{text}");
        assert!(text.contains("(origin 0 0 4)"), "{text}");
        assert!(text.contains("(buffer a u8 4 1 0 3 6 9)"), "{text}");
        assert!(text.starts_with("(repro"));
    }

    #[test]
    fn rust_test_is_self_contained() {
        let r = sample_repro();
        let text = to_rust_test("case", &r);
        assert!(text.contains("#[test]"));
        assert!(text.contains("fn repro_case()"));
        assert!(text.contains("sexpr::parse"));
        assert!(text.contains("assert_eq!(got, want);"));
        // The buffer contents survive verbatim.
        assert!(text.contains("&[0, 3, 6, 9]"), "{text}");
    }

    #[test]
    fn emit_writes_both_files() {
        let dir = std::env::temp_dir().join("rake-oracle-test-repros");
        let _ = std::fs::remove_dir_all(&dir);
        let r = sample_repro();
        let paths = emit(&dir, "unit", &r).unwrap();
        assert!(paths.sexpr.exists());
        assert!(paths.test.exists());
        let name = repro_name("unit", &r);
        assert!(paths.sexpr.ends_with(format!("{name}.sexp")));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
