//! Adversarial input sampling.
//!
//! Uniform random buffers almost never exercise the places where the three
//! semantic models can disagree: saturation clamps, wrapping adds, and the
//! rounding bias of fused narrowing shifts all live within a few units of a
//! type boundary or a power-of-two cut-point. The sampler here draws most
//! of its mass from those points: `MIN`, `MAX`, `±1` neighbours, rounding
//! biases `1 << (k-1)` and the values that wrap under a round-add,
//! `MAX - (1 << (k-1)) ± 1`.

use std::collections::BTreeMap;

use halide_ir::{Buffer2D, Env};
use lanes::rng::Rng;
use lanes::ElemType;

/// The boundary values worth over-sampling for a type: extremes, their
/// neighbours, zero/one, and rounding cut-points for every shift amount up
/// to 8 (the fused-narrow shifts the workloads use).
pub fn boundary_pool(ty: ElemType) -> Vec<i64> {
    let (lo, hi) = (ty.min_value(), ty.max_value());
    let mut pool = vec![lo, lo + 1, lo + 2, -1, 0, 1, 2, hi - 2, hi - 1, hi];
    for k in 1..=ty.bits().min(8) {
        let bias = 1i64 << (k - 1);
        // `x + bias` wraps exactly when x > hi - bias: straddle that edge.
        pool.extend([bias - 1, bias, bias + 1, hi - bias - 1, hi - bias, hi - bias + 1]);
        if ty.is_signed() {
            pool.extend([-bias - 1, -bias, -bias + 1, lo + bias - 1, lo + bias, lo + bias + 1]);
        }
    }
    pool.retain(|&v| ty.contains(v));
    pool.sort_unstable();
    pool.dedup();
    pool
}

/// A boundary-biased value sampler for one element type.
#[derive(Debug, Clone)]
pub struct Sampler {
    ty: ElemType,
    pool: Vec<i64>,
}

impl Sampler {
    /// A sampler for `ty` with its boundary pool precomputed.
    pub fn new(ty: ElemType) -> Sampler {
        Sampler { ty, pool: boundary_pool(ty) }
    }

    /// Draw one value: 50% a boundary value, 20% a boundary value nudged
    /// by up to ±2 (wrapped back into range), 30% uniform over the type.
    pub fn draw(&self, rng: &mut Rng) -> i64 {
        match rng.gen_range_usize(0..=9) {
            0..=4 => self.pool[rng.gen_range_usize(0..=self.pool.len() - 1)],
            5..=6 => {
                let base = self.pool[rng.gen_range_usize(0..=self.pool.len() - 1)];
                self.ty.wrap(base + rng.gen_range(-2..=2))
            }
            _ => rng.gen_range(self.ty.min_value()..=self.ty.max_value()),
        }
    }
}

/// Build one environment with an adversarially sampled buffer per entry.
pub fn adversarial_env(
    types: &BTreeMap<String, ElemType>,
    width: usize,
    height: usize,
    rng: &mut Rng,
) -> Env {
    let mut env = Env::new();
    for (name, &ty) in types {
        let sampler = Sampler::new(ty);
        let mut cells = vec![0i64; width * height];
        for c in &mut cells {
            *c = sampler.draw(rng);
        }
        env.insert(Buffer2D::from_fn(name, ty, width, height, |x, y| cells[y * width + x]));
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_in_range_and_covers_extremes() {
        for ty in ElemType::ALL {
            let pool = boundary_pool(ty);
            assert!(pool.iter().all(|&v| ty.contains(v)), "{ty:?}");
            assert!(pool.contains(&ty.min_value()));
            assert!(pool.contains(&ty.max_value()));
            // Rounding cut-point for the ubiquitous shift-by-4 narrow.
            assert!(pool.contains(&8));
            assert!(pool.contains(&(ty.max_value() - 8)));
        }
    }

    #[test]
    fn draws_are_always_in_range_and_hit_boundaries() {
        let mut rng = Rng::seed_from_u64(7);
        for ty in ElemType::ALL {
            let s = Sampler::new(ty);
            let mut saw_min = false;
            let mut saw_max = false;
            for _ in 0..2000 {
                let v = s.draw(&mut rng);
                assert!(ty.contains(v), "{ty:?}: {v}");
                saw_min |= v == ty.min_value();
                saw_max |= v == ty.max_value();
            }
            assert!(saw_min && saw_max, "{ty:?} never hit an extreme in 2000 draws");
        }
    }

    #[test]
    fn env_has_all_buffers_with_right_types() {
        let mut types = BTreeMap::new();
        types.insert("a".to_owned(), ElemType::U8);
        types.insert("w".to_owned(), ElemType::I16);
        let mut rng = Rng::seed_from_u64(1);
        let env = adversarial_env(&types, 16, 2, &mut rng);
        assert_eq!(env.get("a").unwrap().elem(), ElemType::U8);
        assert_eq!(env.get("w").unwrap().elem(), ElemType::I16);
        assert_eq!(env.get("a").unwrap().width(), 16);
    }
}
