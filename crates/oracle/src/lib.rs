//! # rake-oracle — a differential correctness oracle for the Rake selector
//!
//! Every compilation stage in this workspace is *verified* (bounded lanes,
//! SMT on lane 0), but verification is only as trustworthy as the semantic
//! models it compares. When the Uber-Instruction IR interpreter and the SMT
//! encoding agree on the wrong semantics, a miscompile sails through every
//! proof. The only referee that cannot share such a bug is end-to-end
//! *execution*: run the compiled HVX program on concrete buffers and compare
//! it lane-for-lane against the Halide IR interpreter — the specification
//! the user wrote.
//!
//! This crate provides that referee:
//!
//! * [`sampling`] builds adversarial input environments biased toward type
//!   boundaries (`MIN`/`MAX`, ±1 around saturation and rounding cut-points)
//!   where wrap/saturate/round disagreements live.
//! * [`gen`] generates seeded, well-typed random vector expressions so the
//!   oracle is not limited to the 21 workloads.
//! * [`Oracle::check`] runs the differential comparison over a grid of tile
//!   origins and environments.
//! * [`minimize`] shrinks a failing case: greedy delta-debugging over the
//!   expression tree, then zeroing buffer cells, until the repro is minimal.
//! * [`repro`] emits each minimized failure as a self-contained Rust test
//!   plus an S-expression artifact under `results/repros/`.
//!
//! The subject under test is abstracted as a closure from `(expr, env,
//! origin, lanes)` to an output vector, so the same oracle drives the full
//! Rake pipeline, the baseline selector, or a deliberately broken
//! interpreter (used to test the oracle itself).

#[cfg(any(test, feature = "fixtures"))]
pub mod fixtures;
pub mod gen;
pub mod minimize;
pub mod repro;
pub mod sampling;

use std::collections::BTreeMap;

use halide_ir::{analysis, eval, Env, EvalCtx, Expr};
use lanes::rng::Rng;
use lanes::Vector;

pub use gen::{gen_expr, GenConfig};
pub use minimize::{minimize, Repro, Subject};
pub use repro::{emit, ReproPaths};

/// Differential-check configuration: the machine geometry and how much
/// adversarial input to throw at each expression.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// Vector width of the subject (must match how it was compiled).
    pub lanes: usize,
    /// Input buffer width in elements.
    pub width: usize,
    /// Input buffer height in rows.
    pub height: usize,
    /// Number of adversarially sampled environments per expression.
    pub envs: usize,
    /// Tile origins to evaluate at (clamp-to-edge makes any origin safe).
    pub origins: Vec<(i64, i64)>,
    /// Base seed; the per-expression stream also hashes the expression so
    /// different expressions see different buffers under one seed.
    pub seed: u64,
}

impl Default for Oracle {
    fn default() -> Oracle {
        Oracle {
            lanes: 8,
            width: 32,
            height: 4,
            envs: 4,
            origins: vec![(0, 0), (5, 1), (17, 2)],
            seed: 0,
        }
    }
}

/// One concrete counterexample found by [`Oracle::check`].
#[derive(Debug, Clone)]
pub struct Failure {
    /// The environment the mismatch was observed in.
    pub env: Env,
    /// Tile origin.
    pub x0: i64,
    /// Tile origin.
    pub y0: i64,
    /// First mismatching lane.
    pub lane: usize,
    /// The interpreter's (ground-truth) value at that lane.
    pub want: i64,
    /// The subject's value at that lane.
    pub got: i64,
}

/// What a differential check concluded.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Number of (environment, origin) points compared.
    pub checks: usize,
    /// Points the subject declined to execute (e.g. compilation failed).
    pub skipped: usize,
    /// Every mismatching point, in discovery order.
    pub failures: Vec<Failure>,
}

impl CheckReport {
    /// Whether every executed point agreed with the interpreter.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// FNV-1a over a byte string; used to derive per-expression seeds and
/// stable artifact names without pulling in a hash crate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Oracle {
    /// A deterministic per-expression RNG: same oracle seed + same
    /// expression always reproduces the same environments.
    fn rng_for(&self, e: &Expr) -> Rng {
        let sexpr = halide_ir::sexpr::to_sexpr(e);
        Rng::seed_from_u64(self.seed ^ fnv1a(sexpr.as_bytes()))
    }

    /// The adversarial environments this oracle would use for `e`.
    pub fn envs_for(&self, e: &Expr) -> Vec<Env> {
        let types: BTreeMap<String, lanes::ElemType> = analysis::buffer_types(e);
        let mut rng = self.rng_for(e);
        (0..self.envs.max(1))
            .map(|_| sampling::adversarial_env(&types, self.width, self.height, &mut rng))
            .collect()
    }

    /// Compare the subject against the Halide IR interpreter on
    /// adversarial environments over every configured origin.
    ///
    /// The subject returns `None` when it cannot execute the point (no
    /// compiled program, unsupported op); such points count as `skipped`,
    /// not as failures.
    pub fn check(
        &self,
        e: &Expr,
        subject: &dyn Fn(&Env, i64, i64, usize) -> Option<Vector>,
    ) -> CheckReport {
        let mut report = CheckReport::default();
        for env in self.envs_for(e) {
            for &(x0, y0) in &self.origins {
                let ctx = EvalCtx { env: &env, x0, y0, lanes: self.lanes };
                let Ok(want) = eval(e, &ctx) else {
                    report.skipped += 1;
                    continue;
                };
                let Some(got) = subject(&env, x0, y0, self.lanes) else {
                    report.skipped += 1;
                    continue;
                };
                report.checks += 1;
                if let Some(lane) = first_mismatch(&want, &got) {
                    report.failures.push(Failure {
                        env: env.clone(),
                        x0,
                        y0,
                        lane,
                        want: want.get(lane),
                        got: got.get(lane),
                    });
                }
            }
        }
        report
    }
}

/// First lane where the two vectors disagree (or differ in geometry).
pub fn first_mismatch(want: &Vector, got: &Vector) -> Option<usize> {
    if want.ty() != got.ty() || want.lanes() != got.lanes() {
        return Some(0);
    }
    (0..want.lanes()).find(|&i| want.get(i) != got.get(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use lanes::ElemType;

    /// A subject that *is* the interpreter: must always be clean.
    fn honest(e: &Expr) -> impl Fn(&Env, i64, i64, usize) -> Option<Vector> + '_ {
        move |env, x0, y0, lanes| eval(e, &EvalCtx { env, x0, y0, lanes }).ok()
    }

    #[test]
    fn interpreter_vs_itself_is_clean() {
        let e = hb::avg_round(
            hb::load("a", ElemType::U8, 0, 0),
            hb::load("a", ElemType::U8, 1, 0),
        );
        let oracle = Oracle::default();
        let report = oracle.check(&e, &honest(&e));
        assert!(report.is_clean());
        assert_eq!(report.checks, oracle.envs * oracle.origins.len());
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn off_by_one_subject_is_caught() {
        let e = hb::add(hb::load("a", ElemType::U8, 0, 0), hb::bcast(1, ElemType::U8));
        let subject = |env: &Env, x0: i64, y0: i64, lanes: usize| {
            let v = eval(&e, &EvalCtx { env, x0, y0, lanes }).ok()?;
            // Corrupt lane 2 only.
            let mut out = v.clone();
            out.set(2, ElemType::U8.wrap(v.get(2) + 1));
            Some(out)
        };
        let report = Oracle::default().check(&e, &subject);
        assert!(!report.is_clean());
        assert!(report.failures.iter().all(|f| f.lane == 2));
    }

    #[test]
    fn same_seed_same_envs() {
        let e = hb::add(hb::load("a", ElemType::I16, 0, 0), hb::load("b", ElemType::I16, 1, 0));
        let o = Oracle { seed: 42, ..Oracle::default() };
        let a = o.envs_for(&e);
        let b = o.envs_for(&e);
        for (ea, eb) in a.iter().zip(&b) {
            for (ba, bb) in ea.iter().zip(eb.iter()) {
                for y in 0..ba.height() {
                    for x in 0..ba.width() {
                        assert_eq!(ba.get(x as i64, y as i64), bb.get(x as i64, y as i64));
                    }
                }
            }
        }
    }
}
