//! Per-stage synthesis statistics (the columns of Table 1).

use std::time::Duration;

/// Query counts and wall-clock time per synthesis stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Equivalence queries issued while lifting (update/replace/extend
    /// candidates checked).
    pub lifting_queries: u64,
    /// Sketch candidates checked while lowering compute.
    pub sketching_queries: u64,
    /// Data-movement candidates checked while concretizing swizzles.
    pub swizzling_queries: u64,
    /// Wall-clock time in lifting.
    pub lifting_time: Duration,
    /// Wall-clock time in sketch synthesis.
    pub sketching_time: Duration,
    /// Wall-clock time in swizzle synthesis.
    pub swizzling_time: Duration,
}

impl SynthStats {
    /// Total synthesis time across stages.
    pub fn total_time(&self) -> Duration {
        self.lifting_time + self.sketching_time + self.swizzling_time
    }

    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: &SynthStats) {
        self.lifting_queries += other.lifting_queries;
        self.sketching_queries += other.sketching_queries;
        self.swizzling_queries += other.swizzling_queries;
        self.lifting_time += other.lifting_time;
        self.sketching_time += other.sketching_time;
        self.swizzling_time += other.swizzling_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SynthStats {
            lifting_queries: 2,
            sketching_queries: 3,
            swizzling_queries: 4,
            lifting_time: Duration::from_millis(10),
            sketching_time: Duration::from_millis(20),
            swizzling_time: Duration::from_millis(30),
        };
        a.merge(&a.clone());
        assert_eq!(a.lifting_queries, 4);
        assert_eq!(a.swizzling_queries, 8);
        assert_eq!(a.total_time(), Duration::from_millis(120));
    }
}
