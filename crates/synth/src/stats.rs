//! Per-stage synthesis statistics (the columns of Table 1).

use std::time::Duration;

/// Query counts and wall-clock time per synthesis stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Equivalence queries issued while lifting (update/replace/extend
    /// candidates checked).
    pub lifting_queries: u64,
    /// Sketch candidates checked while lowering compute.
    pub sketching_queries: u64,
    /// Data-movement candidates checked while concretizing swizzles.
    pub swizzling_queries: u64,
    /// Wall-clock time in lifting.
    pub lifting_time: Duration,
    /// Wall-clock time in sketch synthesis.
    pub sketching_time: Duration,
    /// Wall-clock time in swizzle synthesis.
    pub swizzling_time: Duration,
    /// SMT solver queries actually issued (after the linear fast path and
    /// the verdict cache; counted whether or not memoization is on).
    pub smt_queries: u64,
    /// Wall-clock time inside the SMT solver (term construction through
    /// the CDCL search), across all stages.
    pub smt_time: Duration,
    /// Equivalence queries answered by the verifier's verdict cache
    /// instead of re-running differential tests and proofs.
    pub verdict_cache_hits: u64,
    /// Test-environment families served from the verifier's env cache
    /// instead of regenerated.
    pub env_cache_hits: u64,
    /// Results served from a synthesis cache instead of fresh queries
    /// (filled in by callers that layer caching over the engine).
    pub cache_hits: u64,
    /// Whether synthesis was cut short by a cooperative deadline. A
    /// deadline-terminated run is *incomplete*, not a proof of failure,
    /// so callers must not negative-cache it.
    pub deadline_exceeded: bool,
}

impl SynthStats {
    /// Total synthesis time across stages.
    pub fn total_time(&self) -> Duration {
        self.lifting_time + self.sketching_time + self.swizzling_time
    }

    /// Accumulate another stats record into this one.
    pub fn merge(&mut self, other: &SynthStats) {
        self.lifting_queries += other.lifting_queries;
        self.sketching_queries += other.sketching_queries;
        self.swizzling_queries += other.swizzling_queries;
        self.lifting_time += other.lifting_time;
        self.sketching_time += other.sketching_time;
        self.swizzling_time += other.swizzling_time;
        self.smt_queries += other.smt_queries;
        self.smt_time += other.smt_time;
        self.verdict_cache_hits += other.verdict_cache_hits;
        self.env_cache_hits += other.env_cache_hits;
        self.cache_hits += other.cache_hits;
        self.deadline_exceeded |= other.deadline_exceeded;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = SynthStats {
            lifting_queries: 2,
            sketching_queries: 3,
            swizzling_queries: 4,
            lifting_time: Duration::from_millis(10),
            sketching_time: Duration::from_millis(20),
            swizzling_time: Duration::from_millis(30),
            smt_queries: 5,
            smt_time: Duration::from_millis(40),
            verdict_cache_hits: 6,
            env_cache_hits: 7,
            cache_hits: 1,
            deadline_exceeded: false,
        };
        a.merge(&a.clone());
        assert_eq!(a.lifting_queries, 4);
        assert_eq!(a.swizzling_queries, 8);
        assert_eq!(a.smt_queries, 10);
        assert_eq!(a.smt_time, Duration::from_millis(80));
        assert_eq!(a.verdict_cache_hits, 12);
        assert_eq!(a.env_cache_hits, 14);
        assert_eq!(a.cache_hits, 2);
        assert!(!a.deadline_exceeded);
        assert_eq!(a.total_time(), Duration::from_millis(120));
        a.merge(&SynthStats { deadline_exceeded: true, ..SynthStats::default() });
        assert!(a.deadline_exceeded);
    }
}
