//! SMT encodings of Halide IR and Uber IR lane semantics.
//!
//! Each accessed buffer cell becomes one bit-vector variable, so a lane of
//! an expression is a term over the symbolic tile window. Equivalence of
//! two expressions over `L` lanes is the unsatisfiability of "some lane
//! differs" — the query shape Rake issues to Z3, here discharged by the
//! bundled bit-blasting solver.

use halide_ir::{BinOp, Expr, ShiftDir};
use lanes::ElemType;
use smt::{Context, TermId};
use uber_ir::{ScalarSource, UberExpr};

/// Name of the variable standing for cell `(buffer, x, dy)` where `x` is
/// lane-relative (`dx + lane`).
pub fn cell_var(buffer: &str, x: i64, dy: i32) -> String {
    format!("cell_{buffer}_x{x}_y{dy}")
}

/// Name of the variable standing for a runtime scalar `buffer(x, y0+dy)`.
pub fn scalar_var(buffer: &str, x: i32, dy: i32) -> String {
    format!("scal_{buffer}_x{x}_y{dy}")
}

fn ext_to(ctx: &mut Context, t: TermId, signed: bool, width: u32) -> TermId {
    let w = ctx.width(t);
    debug_assert!(width >= w);
    if signed {
        ctx.sign_ext(t, width - w)
    } else {
        ctx.zero_ext(t, width - w)
    }
}

/// Saturating cast of a term of type `src` into type `dst` (result width
/// `dst.bits()`).
pub fn sat_cast(ctx: &mut Context, t: TermId, src: ElemType, dst: ElemType) -> TermId {
    if dst.bits() >= src.bits() && dst.is_signed() == src.is_signed() {
        return ext_to(ctx, t, src.is_signed(), dst.bits());
    }
    let clamped = if src.is_signed() {
        let lo = dst.min_value().max(src.min_value());
        let hi = dst.max_value().min(src.max_value());
        ctx.sclamp(t, lo, hi)
    } else {
        // Unsigned source: only an upper clamp can apply.
        let hi = (dst.max_value() as u64).min(src.max_value() as u64);
        let hi_t = ctx.constant(hi, src.bits());
        ctx.umin(t, hi_t)
    };
    if dst.bits() <= src.bits() {
        ctx.extract(clamped, dst.bits() - 1, 0)
    } else {
        ext_to(ctx, clamped, src.is_signed(), dst.bits())
    }
}

fn bin_minmax(ctx: &mut Context, op: BinOp, ty: ElemType, a: TermId, b: TermId) -> TermId {
    match (op, ty.is_signed()) {
        (BinOp::Min, true) => ctx.smin(a, b),
        (BinOp::Min, false) => ctx.umin(a, b),
        (BinOp::Max, true) => ctx.smax(a, b),
        (BinOp::Max, false) => ctx.umax(a, b),
        _ => unreachable!("bin_minmax only handles min/max"),
    }
}

fn absd(ctx: &mut Context, ty: ElemType, a: TermId, b: TermId) -> TermId {
    let lt = if ty.is_signed() { ctx.slt(a, b) } else { ctx.ult(a, b) };
    let d1 = ctx.sub(a, b);
    let d2 = ctx.sub(b, a);
    ctx.ite(lt, d2, d1)
}

/// Encode one lane of a Halide IR expression as a term of width
/// `e.ty().bits()`.
pub fn encode_halide_lane(ctx: &mut Context, e: &Expr, lane: usize) -> TermId {
    match e {
        Expr::Load(l) => {
            let name = cell_var(&l.buffer, i64::from(l.dx) + lane as i64, l.dy);
            ctx.var(&name, l.ty.bits())
        }
        Expr::Broadcast(b) => ctx.constant_signed(b.value, b.ty.bits()),
        Expr::BroadcastLoad(b) => {
            let name = scalar_var(&b.buffer, b.x, b.dy);
            ctx.var(&name, b.ty.bits())
        }
        Expr::Cast(c) => {
            let src = c.arg.ty();
            let t = encode_halide_lane(ctx, &c.arg, lane);
            if c.saturating {
                sat_cast(ctx, t, src, c.to)
            } else if c.to.bits() <= src.bits() {
                ctx.extract(t, c.to.bits() - 1, 0)
            } else {
                ext_to(ctx, t, src.is_signed(), c.to.bits())
            }
        }
        Expr::Binary(b) => {
            let ty = e.ty();
            let ta = encode_halide_lane(ctx, &b.lhs, lane);
            let tb = encode_halide_lane(ctx, &b.rhs, lane);
            match b.op {
                BinOp::Add => ctx.add(ta, tb),
                BinOp::Sub => ctx.sub(ta, tb),
                BinOp::Mul => ctx.mul(ta, tb),
                BinOp::Min | BinOp::Max => bin_minmax(ctx, b.op, ty, ta, tb),
                BinOp::Absd => absd(ctx, ty, ta, tb),
            }
        }
        Expr::Shift(s) => {
            let ty = e.ty();
            let t = encode_halide_lane(ctx, &s.arg, lane);
            match s.dir {
                ShiftDir::Left => ctx.shl(t, s.amount),
                ShiftDir::Right => {
                    if ty.is_signed() {
                        ctx.ashr(t, s.amount)
                    } else {
                        ctx.lshr(t, s.amount)
                    }
                }
            }
        }
    }
}

fn scalar_term(ctx: &mut Context, s: &ScalarSource, ty: ElemType) -> TermId {
    match s {
        ScalarSource::Imm(v) => ctx.constant_signed(*v, ty.bits()),
        ScalarSource::Scalar { buffer, x, dy } => {
            let name = scalar_var(buffer, *x, *dy);
            ctx.var(&name, ty.bits())
        }
    }
}

/// Headroom width for multiply-accumulate sums.
fn acc_width(out_bits: u32, extra: u32) -> u32 {
    (out_bits + extra).min(64)
}

/// Encode one lane of an uber-expression as a term of width
/// `e.ty().bits()`.
///
/// # Panics
///
/// Panics if a `vs-mpy-add` kernel weight exceeds the headroom bound
/// (|w| ≥ 2^12); the lifting engine never constructs such kernels.
pub fn encode_uber_lane(ctx: &mut Context, e: &UberExpr, lane: usize) -> TermId {
    match e {
        UberExpr::Data(l) => {
            let name = cell_var(&l.buffer, i64::from(l.dx) + lane as i64, l.dy);
            ctx.var(&name, l.ty.bits())
        }
        UberExpr::Bcast { value, ty } => scalar_term(ctx, value, *ty),
        UberExpr::VsMpyAdd(v) => {
            let w = acc_width(v.out.bits(), 16);
            let mut sum = ctx.constant(0, w);
            for (input, &k) in v.inputs.iter().zip(&v.kernel) {
                assert!(k.unsigned_abs() < (1 << 12), "kernel weight {k} too large to encode");
                let ity = input.ty();
                let t = encode_uber_lane(ctx, input, lane);
                let wide = ext_to(ctx, t, ity.is_signed(), w);
                let kc = ctx.constant_signed(k, w);
                let prod = ctx.mul(wide, kc);
                sum = ctx.add(sum, prod);
            }
            finish_acc(ctx, sum, v.saturating, v.out)
        }
        UberExpr::VvMpyAdd(v) => {
            let max_in: u32 = v
                .pairs
                .iter()
                .map(|(a, b)| a.ty().bits() + b.ty().bits())
                .max()
                .unwrap_or(16);
            let w = acc_width(v.out.bits().max(max_in), 6);
            let mut sum = ctx.constant(0, w);
            for (a, b) in &v.pairs {
                let (ta, tb) = (encode_uber_lane(ctx, a, lane), encode_uber_lane(ctx, b, lane));
                let wa = ext_to(ctx, ta, a.ty().is_signed(), w);
                let wb = ext_to(ctx, tb, b.ty().is_signed(), w);
                let prod = ctx.mul(wa, wb);
                sum = ctx.add(sum, prod);
            }
            finish_acc(ctx, sum, v.saturating, v.out)
        }
        UberExpr::AbsDiff(a, b) => {
            let ty = a.ty();
            let (ta, tb) = (encode_uber_lane(ctx, a, lane), encode_uber_lane(ctx, b, lane));
            absd(ctx, ty, ta, tb)
        }
        UberExpr::Min(a, b) => {
            let ty = a.ty();
            let (ta, tb) = (encode_uber_lane(ctx, a, lane), encode_uber_lane(ctx, b, lane));
            bin_minmax(ctx, BinOp::Min, ty, ta, tb)
        }
        UberExpr::Max(a, b) => {
            let ty = a.ty();
            let (ta, tb) = (encode_uber_lane(ctx, a, lane), encode_uber_lane(ctx, b, lane));
            bin_minmax(ctx, BinOp::Max, ty, ta, tb)
        }
        UberExpr::Average { a, b, round } => {
            let ty = a.ty();
            let w = ty.bits() + 2;
            let (ta, tb) = (encode_uber_lane(ctx, a, lane), encode_uber_lane(ctx, b, lane));
            let wa = ext_to(ctx, ta, ty.is_signed(), w);
            let wb = ext_to(ctx, tb, ty.is_signed(), w);
            let mut sum = ctx.add(wa, wb);
            if *round {
                let one = ctx.constant(1, w);
                sum = ctx.add(sum, one);
            }
            let sh = ctx.ashr(sum, 1);
            ctx.extract(sh, ty.bits() - 1, 0)
        }
        UberExpr::Narrow { arg, shift, round, saturating, out } => {
            let src = arg.ty();
            let t = encode_uber_lane(ctx, arg, lane);
            if *saturating {
                // The round-add wraps at the source width (same datapath as
                // vasr:rnd:sat and the wrapping branch below); only the final
                // clamp into `out` distinguishes the saturating form.
                let mut v = t;
                if *round && *shift > 0 {
                    let r = ctx.constant(1u64 << (shift - 1), src.bits());
                    v = ctx.add(v, r);
                }
                let shifted =
                    if src.is_signed() { ctx.ashr(v, *shift) } else { ctx.lshr(v, *shift) };
                let w = src.bits().max(out.bits()) + 1;
                let wide = ext_to(ctx, shifted, src.is_signed(), w);
                let clamped = ctx.sclamp(wide, out.min_value(), out.max_value());
                ctx.extract(clamped, out.bits() - 1, 0)
            } else {
                // Wrapping semantics: round-add wraps at the source width.
                let mut v = t;
                if *round && *shift > 0 {
                    let r = ctx.constant(1u64 << (shift - 1), src.bits());
                    v = ctx.add(v, r);
                }
                let shifted =
                    if src.is_signed() { ctx.ashr(v, *shift) } else { ctx.lshr(v, *shift) };
                if out.bits() <= src.bits() {
                    ctx.extract(shifted, out.bits() - 1, 0)
                } else {
                    ext_to(ctx, shifted, src.is_signed(), out.bits())
                }
            }
        }
        UberExpr::Widen { arg, out } => {
            let src = arg.ty();
            let t = encode_uber_lane(ctx, arg, lane);
            ext_to(ctx, t, src.is_signed(), out.bits())
        }
        UberExpr::Shl { arg, amount } => {
            let t = encode_uber_lane(ctx, arg, lane);
            ctx.shl(t, *amount)
        }
    }
}

fn finish_acc(ctx: &mut Context, sum: TermId, saturating: bool, out: ElemType) -> TermId {
    let w = ctx.width(sum);
    if saturating {
        let clamped = ctx.sclamp(sum, out.min_value(), out.max_value());
        ctx.extract(clamped, out.bits() - 1, 0)
    } else if out.bits() <= w {
        ctx.extract(sum, out.bits() - 1, 0)
    } else {
        ext_to(ctx, sum, true, out.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use std::sync::OnceLock;

    /// One shared context for the whole test module: encodings intern into
    /// it across tests, exercising the hash-consed reuse path.
    fn solver() -> &'static smt::SharedSolver {
        static SOLVER: OnceLock<smt::SharedSolver> = OnceLock::new();
        SOLVER.get_or_init(smt::SharedSolver::new)
    }

    fn equiv_lane0(h: &Expr, u: &UberExpr) -> bool {
        solver()
            .prove_unsat(
                |ctx| {
                    let th = encode_halide_lane(ctx, h, 0);
                    let tu = encode_uber_lane(ctx, u, 0);
                    ctx.ne(th, tu)
                },
                u64::MAX,
            )
            .expect("unbounded check cannot time out")
    }

    #[test]
    fn widen_mul_add_equals_vs_mpy_add() {
        // u16(in(x)) * 2 + u16(in(x+1))  ==  vs-mpy-add(in, [2, 1], u16)
        let h = hb::add(
            hb::mul(hb::widen(hb::load("in", ElemType::U8, 0, 0)), hb::bcast(2, ElemType::U16)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[2, 1], ElemType::U16);
        assert!(equiv_lane0(&h, &u));
    }

    #[test]
    fn wrong_kernel_rejected() {
        let h = hb::add(
            hb::widen(hb::load("in", ElemType::U8, 0, 0)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[2, 1], ElemType::U16);
        assert!(!equiv_lane0(&h, &u));
    }

    #[test]
    fn saturating_clamp_pattern() {
        // u8(max(min(x, 255), 0)) over u16 x == narrow:sat(x)
        let x = hb::load("w", ElemType::U16, 0, 0);
        let h = hb::cast(ElemType::U8, hb::clamp(x, 0, 255));
        let u = UberExpr::Narrow {
            arg: Box::new(UberExpr::Data(halide_ir::Load {
                buffer: "w".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U16,
            })),
            shift: 0,
            round: false,
            saturating: true,
            out: ElemType::U8,
        };
        assert!(equiv_lane0(&h, &u));
    }

    #[test]
    fn rounding_shift_cast_pattern() {
        // u8((x + 8) >> 4) over a *bounded* u16 x is the gaussian3x3 fused
        // narrow; over an unbounded u16 load it must NOT verify against the
        // saturating fused form but must verify against the wrapping form.
        let x = hb::load("w", ElemType::U16, 0, 0);
        let h = hb::cast(ElemType::U8, hb::shr(hb::add(x, hb::bcast(8, ElemType::U16)), 4));
        let data = UberExpr::Data(halide_ir::Load {
            buffer: "w".into(),
            dx: 0,
            dy: 0,
            ty: ElemType::U16,
        });
        let wrapping = UberExpr::Narrow {
            arg: Box::new(data.clone()),
            shift: 4,
            round: true,
            saturating: false,
            out: ElemType::U8,
        };
        assert!(equiv_lane0(&h, &wrapping));
        let saturating = UberExpr::Narrow {
            arg: Box::new(data),
            shift: 4,
            round: true,
            saturating: true,
            out: ElemType::U8,
        };
        assert!(!equiv_lane0(&h, &saturating));
    }

    #[test]
    fn saturating_rounding_narrow_wraps_at_source_width() {
        // sat_i8((x + 1) >> 1) over an unbounded i16 x: the round-add wraps
        // at i16 (x = 32767 lands on -128, not 127), and the fused
        // saturating narrow must agree on every lane value for the lift to
        // be provable. This is the SMT-level twin of the interpreter fix.
        let x = hb::load("w", ElemType::I16, 0, 0);
        let h = hb::sat_cast(ElemType::I8, hb::shr(hb::add(x, hb::bcast(1, ElemType::I16)), 1));
        let u = UberExpr::Narrow {
            arg: Box::new(UberExpr::Data(halide_ir::Load {
                buffer: "w".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::I16,
            })),
            shift: 1,
            round: true,
            saturating: true,
            out: ElemType::I8,
        };
        assert!(equiv_lane0(&h, &u));
    }

    #[test]
    fn absd_encoding_matches() {
        let h = hb::absd(hb::load("a", ElemType::U8, 0, 0), hb::load("b", ElemType::U8, 0, 0));
        let u = UberExpr::AbsDiff(
            Box::new(UberExpr::Data(halide_ir::Load {
                buffer: "a".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })),
            Box::new(UberExpr::Data(halide_ir::Load {
                buffer: "b".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })),
        );
        assert!(equiv_lane0(&h, &u));
    }

    #[test]
    fn shift_left_is_mul_by_power_of_two() {
        // i16(in) << 6 == vs-mpy-add(in, [64], i16): the `add` benchmark's
        // semantic-reasoning case (Figure 12).
        let h = hb::shl(hb::cast(ElemType::I16, hb::load("in", ElemType::U8, 0, 0)), 6);
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[64], ElemType::I16);
        assert!(equiv_lane0(&h, &u));
    }
}
