//! Algorithm 1: lifting Halide IR to the Uber-Instruction IR.
//!
//! The lifter walks the Halide expression bottom-up. At every node it
//! enumerates candidate uber-expressions built from the already-lifted
//! children by three rules — *update* (fold the new operation into an
//! existing uber-instruction's parameters, e.g. extending a `vs-mpy-add`
//! kernel), *replace* (swap the top uber-instruction for a different one,
//! e.g. `widen` → `vs-mpy-add`), and *extend* (wrap the children in a new
//! uber-instruction) — and keeps the first candidate the equivalence
//! oracle accepts. Each oracle call is one "lifting query" of Table 1.

use std::time::Instant;

use halide_ir::{BinOp, Expr, ShiftDir};
use lanes::ElemType;
use uber_ir::{ScalarSource, UberExpr, VsMpyAdd, VvMpyAdd};

use crate::stats::SynthStats;
use crate::verify::Verifier;

/// Which rule produced a lifting step (Figure 9's "Rule" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiftRule {
    /// Parameters of an existing uber-instruction were updated.
    Update,
    /// The top uber-instruction was replaced by a different one.
    Replace,
    /// A new uber-instruction was added on top.
    Extend,
}

/// One accepted step of the lifting run.
#[derive(Debug, Clone)]
pub struct LiftStep {
    /// The rule that fired.
    pub rule: LiftRule,
    /// The Halide sub-expression being lifted (rendered).
    pub halide: String,
    /// The accepted uber-expression (rendered).
    pub lifted: String,
}

/// The sequence of accepted steps — the demonstration of Figure 9.
#[derive(Debug, Clone, Default)]
pub struct LiftTrace {
    /// Steps in the order they were accepted.
    pub steps: Vec<LiftStep>,
}

/// Cap on `vs-mpy-add` kernel length; longer reductions are left nested.
const MAX_KERNEL: usize = 9;

/// The SMT encoder's headroom bound on `vs-mpy-add` kernel weights
/// (`encode_uber_lane` rejects |w| ≥ 2^12): lifting must never construct
/// a kernel the encoder cannot express, so weight-growing folds past this
/// bound are dropped and the general multiply path covers them instead.
const MAX_WEIGHT: i64 = 1 << 12;

struct Lifter<'a> {
    verifier: &'a Verifier,
    stats: &'a mut SynthStats,
    trace: LiftTrace,
    deadline: Option<Instant>,
    cancel: Option<crate::cancel::CancelFlag>,
    /// Cap on the lifting recursion depth (a reduced-budget knob):
    /// sub-expressions nested deeper than this fail to lift instead of
    /// spending the budget on a deep candidate search.
    max_depth: Option<usize>,
    depth: usize,
}

/// Lift a Halide IR expression into the Uber-Instruction IR.
///
/// Returns the lifted expression and the accepted-step trace, or `None`
/// when some sub-expression admits no verified candidate (the expression
/// is then left to the baseline code generator, as Rake does for
/// non-qualifying expressions).
pub fn lift_expr(
    e: &Expr,
    verifier: &Verifier,
    stats: &mut SynthStats,
) -> Option<(UberExpr, LiftTrace)> {
    lift_expr_with_deadline(e, verifier, None, stats)
}

/// [`lift_expr`] with a cooperative wall-clock deadline: once the instant
/// passes, no further lifting queries are issued, the run returns `None`,
/// and [`SynthStats::deadline_exceeded`] is set (so the caller knows the
/// result is "ran out of time", not "proved unliftable").
pub fn lift_expr_with_deadline(
    e: &Expr,
    verifier: &Verifier,
    deadline: Option<Instant>,
    stats: &mut SynthStats,
) -> Option<(UberExpr, LiftTrace)> {
    lift_expr_budgeted(e, verifier, deadline, None, stats)
}

/// [`lift_expr_with_deadline`] with an additional recursion-depth cap —
/// the degraded-tier entry point: `max_depth: Some(n)` makes expressions
/// nesting deeper than `n` fail fast (as non-qualifying) instead of
/// burning wall-clock on a deep candidate search.
pub fn lift_expr_budgeted(
    e: &Expr,
    verifier: &Verifier,
    deadline: Option<Instant>,
    max_depth: Option<usize>,
    stats: &mut SynthStats,
) -> Option<(UberExpr, LiftTrace)> {
    lift_expr_cancellable(e, verifier, deadline, None, max_depth, stats)
}

/// [`lift_expr_budgeted`] with a cooperative cancellation flag (see
/// [`crate::cancel`]): raising the flag stops the run at the next
/// candidate-screening check point — the same sites the deadline is
/// checked — with [`SynthStats::deadline_exceeded`] set.
pub fn lift_expr_cancellable(
    e: &Expr,
    verifier: &Verifier,
    deadline: Option<Instant>,
    cancel: Option<crate::cancel::CancelFlag>,
    max_depth: Option<usize>,
    stats: &mut SynthStats,
) -> Option<(UberExpr, LiftTrace)> {
    let start = Instant::now();
    let mut sp = trace::span("lift", "synth");
    let queries_before = stats.lifting_queries;
    let mut lifter = Lifter {
        verifier,
        stats,
        trace: LiftTrace::default(),
        deadline,
        cancel,
        max_depth,
        depth: 0,
    };
    let result = lifter.lift(e);
    let trace = lifter.trace;
    stats.lifting_time += start.elapsed();
    if sp.is_active() {
        sp.arg("queries", stats.lifting_queries - queries_before);
        sp.arg("lifted", result.is_some());
        sp.arg("steps", trace.steps.len());
    }
    result.map(|u| (u, trace))
}

impl Lifter<'_> {
    fn lift(&mut self, e: &Expr) -> Option<UberExpr> {
        match e {
            Expr::Load(l) => {
                let u = UberExpr::Data(l.clone());
                self.accept_silently(e, LiftRule::Extend, "leaf.load", &u);
                Some(u)
            }
            Expr::Broadcast(b) => {
                let u = UberExpr::Bcast { value: ScalarSource::Imm(b.value), ty: b.ty };
                self.accept_silently(e, LiftRule::Extend, "leaf.imm-broadcast", &u);
                Some(u)
            }
            Expr::BroadcastLoad(b) => {
                let u = UberExpr::Bcast {
                    value: ScalarSource::Scalar { buffer: b.buffer.clone(), x: b.x, dy: b.dy },
                    ty: b.ty,
                };
                self.accept_silently(e, LiftRule::Extend, "leaf.scalar-broadcast", &u);
                Some(u)
            }
            _ => {
                if self.max_depth.is_some_and(|cap| self.depth >= cap) {
                    return None;
                }
                self.depth += 1;
                let kids: Option<Vec<UberExpr>> =
                    e.children().iter().map(|c| self.lift(c)).collect();
                self.depth -= 1;
                let kids = kids?;
                let cands = self.candidates(e, &kids);
                let mut sp = trace::span("lift.screen", "lift");
                if sp.is_active() {
                    sp.arg("depth", self.depth);
                    sp.arg("candidates", cands.len());
                }
                let Some(winner) = self.screen(e, &cands) else {
                    sp.arg("accepted", false);
                    return None;
                };
                let (rule, site, cand) =
                    cands.into_iter().nth(winner).expect("winner in range");
                sp.arg("rule", site);
                crate::coverage::record_rule(site);
                self.trace.push_step(rule, e, &cand);
                Some(cand)
            }
        }
    }

    /// Screen `cands` against the oracle and return the index of the
    /// first (in input order) accepted candidate.
    ///
    /// When the verifier enables parallel lifting and the process-wide
    /// [`crate::pool`] has spare permits, screening fans across helper
    /// threads. Helpers claim candidate indices from a shared atomic
    /// counter (so claims are monotone: whenever index `i` is claimed,
    /// every index below `i` has been claimed too), record accepts with
    /// `fetch_min`, and stop once their next claim exceeds the current
    /// best. A claim is only ever abandoned when it exceeds the best at
    /// that moment — and the best never increases — so every index up to
    /// the final winner is fully checked. The returned index is therefore
    /// exactly the serial first-accept, and synthesized programs are
    /// byte-identical to the serial path. Only `lifting_queries` may
    /// differ: helpers past the winner may have been mid-check.
    fn screen(
        &mut self,
        e: &Expr,
        cands: &[(LiftRule, &'static str, UberExpr)],
    ) -> Option<usize> {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        let reservation = if self.verifier.parallel_lifting && cands.len() >= 2 {
            Some(crate::pool::global().reserve_up_to(cands.len() - 1))
        } else {
            None
        };
        let helpers = reservation.as_ref().map_or(0, |r| r.count());
        if helpers == 0 {
            for (i, (_, _, cand)) in cands.iter().enumerate() {
                let expired = self.deadline.is_some_and(|deadline| Instant::now() >= deadline);
                if expired || crate::cancel::cancelled(self.cancel) {
                    self.stats.deadline_exceeded = true;
                    return None;
                }
                self.stats.lifting_queries += 1;
                if self.verifier.equiv_halide_uber(e, cand) {
                    return Some(i);
                }
            }
            return None;
        }

        let next = AtomicUsize::new(0);
        let best = AtomicUsize::new(usize::MAX);
        let timed_out = AtomicBool::new(false);
        let queries = AtomicUsize::new(0);
        let verifier = self.verifier;
        let deadline = self.deadline;
        let cancel = self.cancel;
        // Helper threads start with an empty span stack; hand them the
        // calling thread's context so their oracle spans stitch under it.
        let span_ctx = trace::current();
        let worker = || {
            let _adopted = span_ctx.map(trace::adopt);
            loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= cands.len() || i > best.load(Ordering::SeqCst) {
                    break;
                }
                let expired = deadline.is_some_and(|d| Instant::now() >= d);
                if expired || crate::cancel::cancelled(cancel) {
                    timed_out.store(true, Ordering::SeqCst);
                    break;
                }
                queries.fetch_add(1, Ordering::SeqCst);
                if verifier.equiv_halide_uber(e, &cands[i].2) {
                    best.fetch_min(i, Ordering::SeqCst);
                    break;
                }
            }
        };
        std::thread::scope(|scope| {
            let worker = &worker;
            for _ in 0..helpers {
                scope.spawn(worker);
            }
            // The calling thread participates too; its permit is implicit.
            worker();
        });
        drop(reservation);
        self.stats.lifting_queries += queries.load(Ordering::SeqCst) as u64;
        match best.load(Ordering::SeqCst) {
            usize::MAX => {
                if timed_out.load(Ordering::SeqCst) {
                    self.stats.deadline_exceeded = true;
                }
                None
            }
            // An accepted candidate is oracle-verified even if the
            // deadline passed while other helpers were still checking.
            i => Some(i),
        }
    }

    fn accept_silently(&mut self, e: &Expr, rule: LiftRule, site: &'static str, u: &UberExpr) {
        if trace::enabled() {
            // A zero-duration marker span: leaves cost no oracle time but
            // still count toward per-rule firing breakdowns.
            let mut sp = trace::span("lift.rule", "lift");
            sp.arg("rule", site);
            sp.arg("depth", self.depth);
        }
        crate::coverage::record_rule(site);
        self.trace.push_step(rule, e, u);
    }

    /// Candidate uber-expressions for `e` given lifted children, in
    /// decreasing preference (updates before replaces before extends).
    /// Each candidate carries the name of the rule site that produced it
    /// (the [`crate::coverage::RULES`] catalog) for coverage accounting.
    fn candidates(&self, e: &Expr, kids: &[UberExpr]) -> Vec<(LiftRule, &'static str, UberExpr)> {
        let ty = e.ty();
        let mut out: Vec<(LiftRule, &'static str, UberExpr)> = Vec::new();
        match e {
            Expr::Binary(b) => match b.op {
                BinOp::Add | BinOp::Sub => {
                    // Merge vector-vector dot products. An Update, so it
                    // precedes the vs-mpy combinations below — otherwise
                    // the weight-1 vs-mpy wrapping of the same two kids
                    // verifies first and the merged dot product (one
                    // accumulating vv-mpy chain instead of a multiply
                    // followed by a reduction) is never selected.
                    if b.op == BinOp::Add {
                        if let (UberExpr::VvMpyAdd(va), UberExpr::VvMpyAdd(vb)) =
                            (&kids[0], &kids[1])
                        {
                            if va.out == ty && vb.out == ty && !va.saturating && !vb.saturating
                            {
                                let mut pairs = va.pairs.clone();
                                pairs.extend(vb.pairs.clone());
                                out.push((
                                    LiftRule::Update,
                                    "add.vvmpy-merge",
                                    UberExpr::VvMpyAdd(VvMpyAdd {
                                        pairs,
                                        saturating: false,
                                        out: ty,
                                    }),
                                ));
                            }
                        }
                    }
                    let neg = if b.op == BinOp::Sub { -1 } else { 1 };
                    for (ra, oa) in absorb_options(&kids[0], ty, 1) {
                        for (rb, ob) in absorb_options(&kids[1], ty, neg) {
                            let mut inputs = oa.clone();
                            inputs.extend(ob.clone());
                            if inputs.len() > MAX_KERNEL {
                                continue;
                            }
                            let (rule, site) = if ra == LiftRule::Update || rb == LiftRule::Update
                            {
                                (LiftRule::Update, "addsub.vsmpy-update")
                            } else {
                                (LiftRule::Extend, "addsub.vsmpy-extend")
                            };
                            out.push((rule, site, mk_vsmpy(inputs, ty)));
                        }
                    }
                }
                BinOp::Mul => {
                    // Multiplication by an immediate broadcast folds into a
                    // vs-mpy-add weight (Figure 9 step 5, a Replace).
                    for (vec_side, bc_side) in [(0usize, 1usize), (1, 0)] {
                        if let UberExpr::Bcast { value: ScalarSource::Imm(c), .. } =
                            &kids[bc_side]
                        {
                            if c.unsigned_abs() < MAX_WEIGHT.unsigned_abs() {
                                for (_, opt) in absorb_options(&kids[vec_side], ty, *c) {
                                    out.push((
                                        LiftRule::Replace,
                                        "mul.imm-weight-fold",
                                        mk_vsmpy(opt, ty),
                                    ));
                                }
                            }
                        }
                    }
                    // Vector-vector multiply with the widening casts peeled
                    // off: the hardware multiplies the narrow registers
                    // directly, so `widen(a) * widen(b)` lifts to a
                    // narrow-operand dot product.
                    let strip = |k: &UberExpr| match k {
                        UberExpr::Widen { arg, .. } => (**arg).clone(),
                        other => other.clone(),
                    };
                    let (sa, sb) = (strip(&kids[0]), strip(&kids[1]));
                    if (&sa, &sb) != (&kids[0], &kids[1]) {
                        out.push((
                            LiftRule::Replace,
                            "mul.widen-strip-vvmpy",
                            UberExpr::VvMpyAdd(VvMpyAdd {
                                pairs: vec![(sa, sb)],
                                saturating: false,
                                out: ty,
                            }),
                        ));
                    }
                    // General vector-vector multiply.
                    out.push((
                        LiftRule::Extend,
                        "mul.vvmpy-extend",
                        UberExpr::VvMpyAdd(VvMpyAdd {
                            pairs: vec![(kids[0].clone(), kids[1].clone())],
                            saturating: false,
                            out: ty,
                        }),
                    ));
                }
                BinOp::Min => out.push((
                    LiftRule::Extend,
                    "min.extend",
                    UberExpr::Min(Box::new(kids[0].clone()), Box::new(kids[1].clone())),
                )),
                BinOp::Max => out.push((
                    LiftRule::Extend,
                    "max.extend",
                    UberExpr::Max(Box::new(kids[0].clone()), Box::new(kids[1].clone())),
                )),
                BinOp::Absd => out.push((
                    LiftRule::Extend,
                    "absd.extend",
                    UberExpr::AbsDiff(Box::new(kids[0].clone()), Box::new(kids[1].clone())),
                )),
            },
            Expr::Shift(s) => match s.dir {
                ShiftDir::Left => {
                    // x << n == x * 2^n: fold into multiply-add weights
                    // (the `add` benchmark's optimization, Figure 12).
                    if s.amount < 12 {
                        for (_, opt) in absorb_options(&kids[0], ty, 1i64 << s.amount) {
                            out.push((LiftRule::Replace, "shl.weight-fold", mk_vsmpy(opt, ty)));
                        }
                    }
                    out.push((
                        LiftRule::Extend,
                        "shl.extend",
                        UberExpr::Shl { arg: Box::new(kids[0].clone()), amount: s.amount },
                    ));
                }
                ShiftDir::Right => {
                    // Averaging: (a + b [+1]) >> 1 == average(a, b); checked
                    // first since `vavg` is the cheapest implementation.
                    if s.amount == 1 {
                        out.extend(average_candidates(&kids[0], ty));
                    }
                    out.extend(self.narrow_candidates(&kids[0], s.amount, ty, false));
                }
            },
            Expr::Cast(c) => {
                let k = &kids[0];
                if c.to.bits() > k.ty().bits() {
                    // Widening cast: update a non-saturating multiply-add's
                    // output type (sum at full width), else extend.
                    if let UberExpr::VsMpyAdd(v) = k {
                        if !v.saturating {
                            let mut v2 = v.clone();
                            v2.out = c.to;
                            out.push((
                                LiftRule::Update,
                                "widen.vsmpy-output",
                                UberExpr::VsMpyAdd(v2),
                            ));
                        }
                    }
                    out.push((
                        LiftRule::Extend,
                        "widen.extend",
                        UberExpr::Widen { arg: Box::new(k.clone()), out: c.to },
                    ));
                } else {
                    out.extend(self.narrow_candidates(k, 0, c.to, c.saturating));
                }
            }
            Expr::Load(_) | Expr::Broadcast(_) | Expr::BroadcastLoad(_) => {}
        }
        out
    }

    /// Candidates for a right-shift-and/or-cast: fused `narrow` forms, with
    /// clamp stripping (saturation subsumes the min/max) and rounding-term
    /// stripping (the `+ (1 << (n-1))` input becomes the round flag).
    fn narrow_candidates(
        &self,
        k: &UberExpr,
        shift: u32,
        to: ElemType,
        cast_saturating: bool,
    ) -> Vec<(LiftRule, &'static str, UberExpr)> {
        let mut out = Vec::new();
        let mk = |arg: &UberExpr, shift, round, saturating| UberExpr::Narrow {
            arg: Box::new(arg.clone()),
            shift,
            round,
            saturating,
            out: to,
        };

        // A widen that is immediately narrowed back is the identity.
        if shift == 0 {
            if let UberExpr::Widen { arg, .. } = k {
                if arg.ty() == to {
                    out.push((LiftRule::Replace, "narrow.widen-identity", (**arg).clone()));
                }
            }
        }

        // Update an existing narrow: deepen the shift / change the output.
        if let UberExpr::Narrow { arg, shift: s0, round, saturating, out: _ } = k {
            out.push((LiftRule::Update, "narrow.deepen", mk(arg, s0 + shift, *round, true)));
            out.push((
                LiftRule::Update,
                "narrow.deepen",
                mk(arg, s0 + shift, *round, *saturating),
            ));
        }

        // Strip explicit clamps: saturation makes them redundant (the
        // camera_pipe case, Figure 12).
        for stripped in strip_clamps(k) {
            if let UberExpr::Narrow { arg, shift: s0, round, .. } = &stripped {
                out.push((
                    LiftRule::Replace,
                    "narrow.strip-clamp",
                    mk(arg, s0 + shift, *round, true),
                ));
            }
            out.push((LiftRule::Replace, "narrow.strip-clamp", mk(&stripped, shift, false, true)));
        }

        // Strip a rounding term: vs-mpy-add with a `+ 2^(n-1)` constant
        // input becomes round=true (the gaussian3x3 case).
        if shift > 0 {
            if let Some(stripped) = strip_rounding_term(k, shift) {
                // Prefer the fused saturating form (a single HVX
                // instruction) — valid whenever the value range fits, which
                // the oracle decides.
                out.push((
                    LiftRule::Update,
                    "narrow.strip-rounding",
                    mk(&stripped, shift, true, true),
                ));
                out.push((
                    LiftRule::Update,
                    "narrow.strip-rounding",
                    mk(&stripped, shift, true, false),
                ));
            }
        }

        // Plain fused shift-narrow; try the saturating form first (it is
        // the cheaper single instruction when provably equivalent).
        out.push((LiftRule::Extend, "narrow.fuse", mk(k, shift, false, true)));
        out.push((LiftRule::Extend, "narrow.fuse", mk(k, shift, false, cast_saturating)));
        // A narrow shifts at the *source* width, so a deepened shift that
        // reaches it is unrepresentable — and would panic the evaluators
        // during verification (found by oracle_fuzz on `(x >> 10) >> 7`
        // over u16). Drop such candidates; the shifts stay nested.
        out.retain(|(_, _, u)| match u {
            UberExpr::Narrow { arg, shift, .. } => *shift < arg.ty().bits(),
            _ => true,
        });
        out
    }
}

impl LiftTrace {
    fn push_step(&mut self, rule: LiftRule, e: &Expr, u: &UberExpr) {
        self.steps.push(LiftStep {
            rule,
            halide: e.to_string(),
            lifted: u.to_string().trim_end().to_owned(),
        });
    }
}

fn mk_vsmpy(terms: Vec<(UberExpr, i64)>, out: ElemType) -> UberExpr {
    let (inputs, kernel) = terms.into_iter().unzip();
    UberExpr::VsMpyAdd(VsMpyAdd { inputs, kernel, saturating: false, out })
}

/// Ways to express `k * mult` as weighted `vs-mpy-add` terms with output
/// type `out`. Flattened (merge) decompositions come first; the opaque
/// pass-through (weight on the whole value) last.
fn absorb_options(
    k: &UberExpr,
    out: ElemType,
    mult: i64,
) -> Vec<(LiftRule, Vec<(UberExpr, i64)>)> {
    let mut options = Vec::new();
    match k {
        UberExpr::Widen { arg, out: o } if *o == out => {
            options.push((LiftRule::Replace, vec![((**arg).clone(), mult)]));
        }
        UberExpr::VsMpyAdd(v) if v.out == out && !v.saturating => {
            let merged: Option<Vec<(UberExpr, i64)>> = v
                .inputs
                .iter()
                .cloned()
                .zip(v.kernel.iter().map(|w| w.checked_mul(mult)))
                .map(|(input, w)| w.map(|w| (input, w)))
                .collect();
            if let Some(merged) = merged {
                options.push((LiftRule::Update, merged));
            }
        }
        UberExpr::Shl { arg, amount } if k.ty() == out && *amount < 12 => {
            if let Some(shifted) = mult.checked_mul(1i64 << amount) {
                for (_, inner) in absorb_options(arg, out, shifted) {
                    options.push((LiftRule::Replace, inner));
                }
            }
        }
        _ => {}
    }
    if k.ty() == out {
        options.push((LiftRule::Extend, vec![(k.clone(), mult)]));
    }
    // Uphold the encoder's invariant: any fold whose weights left the
    // encodable range is discarded, not clamped.
    options.retain(|(_, terms)| terms.iter().all(|(_, w)| w.unsigned_abs() < MAX_WEIGHT.unsigned_abs()));
    options
}

/// Remove leading `min`/`max`-against-broadcast layers (clamps), innermost
/// variants last.
fn strip_clamps(k: &UberExpr) -> Vec<UberExpr> {
    let mut out = Vec::new();
    let mut cur = k;
    while let UberExpr::Max(a, b) | UberExpr::Min(a, b) = cur {
        let inner = if matches!(**b, UberExpr::Bcast { .. }) {
            a
        } else if matches!(**a, UberExpr::Bcast { .. }) {
            b
        } else {
            break;
        };
        out.push((**inner).clone());
        cur = inner;
    }
    out
}

/// If `k` is a `vs-mpy-add` containing a `+ 2^(shift-1)` constant-broadcast
/// term with weight 1, return it with that term removed.
fn strip_rounding_term(k: &UberExpr, shift: u32) -> Option<UberExpr> {
    let UberExpr::VsMpyAdd(v) = k else { return None };
    let rounding = 1i64 << (shift - 1);
    let pos = v.inputs.iter().zip(&v.kernel).position(|(input, &w)| {
        matches!(input, UberExpr::Bcast { value: ScalarSource::Imm(c), .. } if c.checked_mul(w) == Some(rounding))
    })?;
    let mut v2 = v.clone();
    v2.inputs.remove(pos);
    v2.kernel.remove(pos);
    if v2.inputs.is_empty() {
        return None;
    }
    Some(UberExpr::VsMpyAdd(v2))
}

/// Candidates turning `(a + b [+ 1]) >> 1` into `average(a, b)`.
fn average_candidates(k: &UberExpr, ty: ElemType) -> Vec<(LiftRule, &'static str, UberExpr)> {
    let UberExpr::VsMpyAdd(v) = k else { return Vec::new() };
    if v.out != ty {
        return Vec::new();
    }
    let mut operands = Vec::new();
    let mut round = false;
    for (input, &w) in v.inputs.iter().zip(&v.kernel) {
        if w != 1 {
            return Vec::new();
        }
        if let UberExpr::Bcast { value: ScalarSource::Imm(1), .. } = input {
            if round {
                return Vec::new();
            }
            round = true;
        } else {
            operands.push(input.clone());
        }
    }
    if operands.len() != 2 || operands[0].ty() != operands[1].ty() {
        return Vec::new();
    }
    let avg = UberExpr::Average {
        a: Box::new(operands[0].clone()),
        b: Box::new(operands[1].clone()),
        round,
    };
    let t = operands[0].ty();
    if t == ty {
        vec![(LiftRule::Replace, "shr.average", avg)]
    } else if t.bits() * 2 == ty.bits() {
        // Halving sum of widened operands: average at the narrow width,
        // then widen — `(u16(a) + u16(b) + 1) >> 1 == u16(vavg(a, b))`.
        vec![(
            LiftRule::Replace,
            "shr.average",
            UberExpr::Widen { arg: Box::new(avg), out: ty },
        )]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;

    fn lift(e: &Expr) -> Option<UberExpr> {
        let verifier = Verifier::fast();
        let mut stats = SynthStats::default();
        lift_expr(e, &verifier, &mut stats).map(|(u, _)| u)
    }

    #[test]
    fn lifts_three_tap_row_to_single_vs_mpy_add() {
        // Figure 9: u16(in(x-1)) + u16(in(x))*2 + u16(in(x+1)).
        let t = |dx| hb::widen(hb::load("in", ElemType::U8, dx, 0));
        let e = hb::add(hb::add(t(-1), hb::mul(t(0), hb::bcast(2, ElemType::U16))), t(1));
        let u = lift(&e).expect("must lift");
        let UberExpr::VsMpyAdd(v) = &u else { panic!("got {u}") };
        assert_eq!(v.inputs.len(), 3);
        assert_eq!(v.kernel, vec![1, 2, 1]);
        assert!(v.inputs.iter().all(|i| matches!(i, UberExpr::Data(_))));
    }

    #[test]
    fn lift_trace_records_rules() {
        let t = |dx| hb::widen(hb::load("in", ElemType::U8, dx, 0));
        let e = hb::add(t(-1), hb::mul(t(0), hb::bcast(2, ElemType::U16)));
        let verifier = Verifier::fast();
        let mut stats = SynthStats::default();
        let (_, trace) = lift_expr(&e, &verifier, &mut stats).unwrap();
        assert!(stats.lifting_queries > 0);
        assert!(trace.steps.iter().any(|s| s.rule == LiftRule::Replace));
    }

    #[test]
    fn lifts_saturating_clamp_cast() {
        // u8(max(min(x, 255), 0)) over u16 -> narrow:sat.
        let x = hb::add(
            hb::widen(hb::load("in", ElemType::U8, 0, 0)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let e = hb::cast(ElemType::U8, hb::clamp(x, 0, 255));
        let u = lift(&e).expect("must lift");
        let UberExpr::Narrow { saturating, shift, .. } = &u else { panic!("got {u}") };
        assert!(*saturating);
        assert_eq!(*shift, 0);
    }

    #[test]
    fn lifts_rounding_shift_to_fused_narrow() {
        // u8((sum + 8) >> 4) — the gaussian3x3 shape. The bounded range
        // makes the saturating fused form provably equivalent.
        let t = |dx| hb::widen(hb::load("in", ElemType::U8, dx, 0));
        let sum = hb::add(hb::add(t(-1), hb::mul(t(0), hb::bcast(2, ElemType::U16))), t(1));
        let e = hb::cast(ElemType::U8, hb::shr(hb::add(sum, hb::bcast(8, ElemType::U16)), 4));
        let u = lift(&e).expect("must lift");
        let UberExpr::Narrow { arg, shift, round, saturating, out } = &u else {
            panic!("got {u}")
        };
        assert_eq!((*shift, *round, *saturating, *out), (4, true, true, ElemType::U8));
        assert!(matches!(**arg, UberExpr::VsMpyAdd(_)));
    }

    #[test]
    fn lifts_shl_into_weight() {
        // i16(u8x) << 6 + bcast: the `add` benchmark fold (Figure 12).
        let e = hb::add(
            hb::shl(hb::cast(ElemType::I16, hb::load("in", ElemType::U8, 0, 0)), 6),
            hb::bcast(-64, ElemType::I16),
        );
        let u = lift(&e).expect("must lift");
        let UberExpr::VsMpyAdd(v) = &u else { panic!("got {u}") };
        assert!(v.kernel.contains(&64), "kernel {:?} should contain 64", v.kernel);
    }

    #[test]
    fn lifts_absd_and_max() {
        let t = |dx| hb::load("in", ElemType::U8, dx, 0);
        let e = hb::max(hb::absd(t(0), t(1)), t(2));
        let u = lift(&e).expect("must lift");
        assert!(matches!(u, UberExpr::Max(..)));
    }

    #[test]
    fn lifts_average_pattern() {
        // u8((u16(a) + u16(b) + 1) >> 1) -> average:rnd over u8? The
        // halving-add stays in u16 then narrows; check the shift-1 average
        // candidate at matching width: (a + b + 1) >> 1 over u16 values.
        let a = hb::widen(hb::load("a", ElemType::U8, 0, 0));
        let b = hb::widen(hb::load("b", ElemType::U8, 0, 0));
        let e = hb::shr(hb::add(hb::add(a, b), hb::bcast(1, ElemType::U16)), 1);
        let u = lift(&e).expect("must lift");
        match &u {
            UberExpr::Widen { arg, .. } => assert!(matches!(**arg, UberExpr::Average { round: true, .. })),
            // A narrow over the sum is also correct; average is preferred.
            other => panic!("expected average, got {other}"),
        }
    }

    #[test]
    fn lifts_runtime_scalar_multiply() {
        let e = hb::mul(
            hb::bcast_load("w", 3, 0, ElemType::U8),
            hb::load("in", ElemType::U8, 0, 0),
        );
        let u = lift(&e).expect("must lift");
        assert!(matches!(u, UberExpr::VvMpyAdd(_)));
    }

    #[test]
    fn depth_cap_fails_deep_expressions_but_keeps_shallow_ones() {
        // The three-tap row nests four operator levels; a cap of 2 must
        // reject it fast while a generous cap still lifts it.
        let t = |dx| hb::widen(hb::load("in", ElemType::U8, dx, 0));
        let e = hb::add(hb::add(t(-1), hb::mul(t(0), hb::bcast(2, ElemType::U16))), t(1));
        let verifier = Verifier::fast();
        let mut stats = SynthStats::default();
        assert!(lift_expr_budgeted(&e, &verifier, None, Some(2), &mut stats).is_none());
        assert!(!stats.deadline_exceeded, "a depth reject is not a timeout");
        let mut stats = SynthStats::default();
        assert!(lift_expr_budgeted(&e, &verifier, None, Some(16), &mut stats).is_some());
    }

    /// Found by `oracle_fuzz`: stacked right shifts must not deepen a
    /// fused narrow past the source width — `(x >> 10) >> 7` over u16
    /// built a shift-17 narrow that panicked the evaluators.
    #[test]
    fn stacked_right_shifts_do_not_overdeepen_narrow() {
        let e = hb::shr(hb::shr(hb::load("w", ElemType::U16, 0, 0), 10), 7);
        if let Some(u) = lift(&e) {
            fn narrow_ok(u: &UberExpr) -> bool {
                let own = match u {
                    UberExpr::Narrow { arg, shift, .. } => *shift < arg.ty().bits(),
                    _ => true,
                };
                own && u.children().iter().all(|c| narrow_ok(c))
            }
            assert!(narrow_ok(&u), "{u}");
        }
    }

    /// Found by `oracle_fuzz`: stacked left shifts compound multiply-add
    /// weights past the encoder's 2^12 headroom bound — `(x << 11) << 1`
    /// reached weight 4096 and panicked the SMT encoder. Such folds must
    /// be dropped, not constructed.
    #[test]
    fn compounded_shift_weights_stay_encodable() {
        let e = hb::shl(hb::shl(hb::load("w", ElemType::I16, 0, 0), 11), 1);
        if let Some(u) = lift(&e) {
            fn max_weight(u: &UberExpr) -> u64 {
                let own = match u {
                    UberExpr::VsMpyAdd(v) => {
                        v.kernel.iter().map(|w| w.unsigned_abs()).max().unwrap_or(0)
                    }
                    _ => 0,
                };
                u.children().iter().map(|c| max_weight(c)).max().unwrap_or(0).max(own)
            }
            assert!(max_weight(&u) < MAX_WEIGHT.unsigned_abs(), "{u}");
        }
    }
}
