//! Enumerative swizzle synthesis (§5).
//!
//! Given target values (what a `??load`/`??swizzle` hole must hold) and a
//! set of source expressions, search bottom-up over sequences of concrete
//! data-movement instructions — `valign`, `vror`, `vshuffvdd`, `vdealvdd`,
//! `vcombine`, `lo`/`hi` — for one that produces the target on every test
//! environment. Candidates are deduplicated by *observational equivalence*
//! (their outputs on the test environments), the standard bottom-up
//! enumerative-synthesis trick, and the search is bounded by depth and by
//! the remaining cost budget β of Algorithm 2.
//!
//! This is the search engine behind the aligned-load mode: the closed-form
//! `valign` recipe of [`crate::swizzle::load_window`] is replaced by an
//! actual synthesis query whose solution is discovered, not computed.

use std::collections::HashMap;
use std::time::Instant;

use halide_ir::Env;
use hvx::{CostModel, ExecCtx, HvxExpr, Op, Value};
use lanes::ElemType;

use crate::stats::SynthStats;

/// Geometry of the search: where candidates are evaluated.
#[derive(Debug, Clone, Copy)]
pub struct SearchCtx {
    /// Loop origin (lane 0) used during evaluation.
    pub x0: i64,
    /// Loop row.
    pub y0: i64,
    /// Vectorization width in lanes.
    pub lanes: usize,
    /// Register width in bytes.
    pub vec_bytes: usize,
}

/// The enumerative searcher.
pub struct SwizzleSearch<'a> {
    envs: &'a [Env],
    ctx: SearchCtx,
    /// Maximum chain depth (number of stacked swizzle ops).
    pub max_depth: usize,
    /// Cost ceiling (total instruction units) for a solution.
    pub max_units: u32,
    /// Hard cap on distinct intermediate values kept (the search gives up
    /// beyond it — Algorithm 2 treats that as "not within budget").
    pub max_pool: usize,
    /// Hard cap on candidate evaluations.
    pub max_queries: u64,
    /// Cooperative wall-clock deadline: once the instant passes, no
    /// further candidates are evaluated and the search declines with
    /// [`SynthStats::deadline_exceeded`] set — Algorithm 2's backtracking
    /// loop otherwise checks only the cost budget β, so one swizzle query
    /// could overrun the whole job's time budget unchecked.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, checked alongside the deadline.
    pub cancel: Option<crate::cancel::CancelFlag>,
}

impl<'a> SwizzleSearch<'a> {
    /// A searcher evaluating candidates on the given environments.
    pub fn new(envs: &'a [Env], ctx: SearchCtx) -> SwizzleSearch<'a> {
        SwizzleSearch {
            envs,
            ctx,
            max_depth: 3,
            max_units: 6,
            max_pool: 300,
            max_queries: 20_000,
            deadline: None,
            cancel: None,
        }
    }

    fn eval_all(&self, e: &HvxExpr) -> Option<Vec<Value>> {
        self.envs
            .iter()
            .map(|env| {
                e.eval_ctx(&ExecCtx {
                    env,
                    x0: self.ctx.x0,
                    y0: self.ctx.y0,
                    lanes: self.ctx.lanes,
                    vec_bytes: self.ctx.vec_bytes,
                })
                .ok()
            })
            .collect()
    }

    fn units(&self, e: &HvxExpr) -> u32 {
        CostModel::new(self.ctx.lanes, self.ctx.vec_bytes).count(&e.to_program()).total()
    }

    /// Unary swizzles applicable to a value of byte length `len`.
    fn unary_ops(&self, elem: ElemType, is_pair: bool) -> Vec<Op> {
        let mut ops = Vec::new();
        if is_pair {
            ops.push(Op::Lo);
            ops.push(Op::Hi);
            ops.push(Op::VshuffPair { elem });
            ops.push(Op::VdealPair { elem });
            if elem.widened().is_some() {
                let w = elem.widened().expect("checked");
                ops.push(Op::VshuffPair { elem: w });
                ops.push(Op::VdealPair { elem: w });
            }
        } else {
            for b in [1usize, elem.bytes(), self.ctx.vec_bytes / 2] {
                if b > 0 && b < self.ctx.vec_bytes {
                    ops.push(Op::Vror { bytes: b as u32 });
                }
            }
        }
        ops
    }

    /// Find an expression over `sources` (plus swizzle ops) whose value
    /// equals `target`'s on every environment. Each candidate evaluation
    /// counts as one swizzling query.
    pub fn synthesize(
        &self,
        target: &HvxExpr,
        sources: &[HvxExpr],
        elem: ElemType,
        stats: &mut SynthStats,
    ) -> Option<HvxExpr> {
        let mut sp = trace::span("swizzle.search", "swizzle");
        let before = stats.swizzling_queries;
        let result = self.synthesize_inner(target, sources, elem, stats);
        if sp.is_active() {
            sp.arg("queries", stats.swizzling_queries - before);
            sp.arg("sources", sources.len());
            sp.arg("found", result.is_some());
        }
        result
    }

    fn synthesize_inner(
        &self,
        target: &HvxExpr,
        sources: &[HvxExpr],
        elem: ElemType,
        stats: &mut SynthStats,
    ) -> Option<HvxExpr> {
        let want = self.eval_all(target)?;
        if want.iter().any(|v| v.is_empty()) {
            return None;
        }

        // Bottom-up enumeration with observational-equivalence dedup.
        let mut seen: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut pool: Vec<(HvxExpr, Vec<Value>)> = Vec::new();
        let mut frontier: Vec<usize> = Vec::new();

        let start_queries = stats.swizzling_queries;
        let admit = |e: HvxExpr,
                         pool: &mut Vec<(HvxExpr, Vec<Value>)>,
                         seen: &mut HashMap<Vec<Value>, usize>,
                         stats: &mut SynthStats|
         -> Option<Result<HvxExpr, usize>> {
            if pool.len() >= self.max_pool
                || stats.swizzling_queries - start_queries >= self.max_queries
            {
                return None;
            }
            let expired = self.deadline.is_some_and(|deadline| Instant::now() >= deadline);
            if expired || crate::cancel::cancelled(self.cancel) {
                stats.deadline_exceeded = true;
                return None;
            }
            stats.swizzling_queries += 1;
            if self.units(&e) > self.max_units {
                return None;
            }
            let outs = self.eval_all(&e)?;
            if outs == want {
                return Some(Ok(e));
            }
            if seen.contains_key(&outs) {
                return None; // observationally equivalent to a known value
            }
            let idx = pool.len();
            seen.insert(outs.clone(), idx);
            pool.push((e, outs));
            Some(Err(idx))
        };

        for s in sources {
            match admit(s.clone(), &mut pool, &mut seen, stats) {
                Some(Ok(found)) => return Some(found),
                Some(Err(idx)) => frontier.push(idx),
                None => {}
            }
        }

        for _depth in 0..self.max_depth {
            let mut next = Vec::new();
            // Unary expansions of the frontier.
            for &i in &frontier {
                let (e, outs) = &pool[i];
                let e = e.clone();
                let is_pair = outs[0].is_pair();
                for op in self.unary_ops(elem, is_pair) {
                    let cand = HvxExpr::op(op, vec![e.clone()]);
                    match admit(cand, &mut pool, &mut seen, stats) {
                        Some(Ok(found)) => return Some(found),
                        Some(Err(idx)) => next.push(idx),
                        None => {}
                    }
                }
            }
            // Binary expansions: valign windows and pair assembly over
            // everything seen so far (frontier × pool).
            let pool_len = pool.len();
            for &i in &frontier {
                for j in 0..pool_len {
                    let (a, aouts) = (&pool[i].0.clone(), pool[i].1.clone());
                    let (b, bouts) = (&pool[j].0.clone(), pool[j].1.clone());
                    if aouts[0].is_pair() || bouts[0].is_pair() {
                        continue;
                    }
                    if aouts[0].len() != bouts[0].len() {
                        continue;
                    }
                    let mut cands =
                        vec![HvxExpr::op(Op::Vcombine, vec![a.clone(), b.clone()])];
                    for off in 1..aouts[0].len() {
                        cands.push(HvxExpr::op(
                            Op::Valign { bytes: off as u32 },
                            vec![a.clone(), b.clone()],
                        ));
                    }
                    for cand in cands {
                        match admit(cand, &mut pool, &mut seen, stats) {
                            Some(Ok(found)) => return Some(found),
                            Some(Err(idx)) => next.push(idx),
                            None => {}
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::Buffer2D;

    fn envs() -> Vec<Env> {
        (0..3u64)
            .map(|seed| {
                let mut env = Env::new();
                env.insert(Buffer2D::from_fn("in", ElemType::U8, 64, 2, |x, y| {
                    ((x as u64 * 37 + y as u64 * 11 + seed * 101) % 251) as i64
                }));
                env
            })
            .collect()
    }

    fn ctx() -> SearchCtx {
        SearchCtx { x0: 16, y0: 0, lanes: 8, vec_bytes: 8 }
    }

    #[test]
    fn rediscovers_valign_for_unaligned_window() {
        // Target: the unaligned window at dx = -1. Sources: the aligned
        // registers around it. The searcher must synthesize the valign.
        let envs = envs();
        let search = SwizzleSearch::new(&envs, ctx());
        let target = HvxExpr::vmem("in", ElemType::U8, -1, 0);
        let sources =
            vec![HvxExpr::vmem("in", ElemType::U8, -8, 0), HvxExpr::vmem("in", ElemType::U8, 0, 0)];
        let mut stats = SynthStats::default();
        let found = search
            .synthesize(&target, &sources, ElemType::U8, &mut stats)
            .expect("must synthesize the window");
        assert!(found.to_string().contains("valign"), "got:\n{found}");
        assert!(stats.swizzling_queries > 2, "search must have explored candidates");
    }

    #[test]
    fn rediscovers_interleave_fixup() {
        // Target: the natural-order widened pair. Source: the raw
        // deinterleaved vzxt. Solution: one vshuffvdd.
        let envs = envs();
        let search = SwizzleSearch::new(&envs, ctx());
        let zxt = HvxExpr::op(
            Op::Vzxt { elem: ElemType::U8 },
            vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)],
        );
        let target = HvxExpr::op(Op::VshuffPair { elem: ElemType::U16 }, vec![zxt.clone()]);
        let mut stats = SynthStats::default();
        let found = search
            .synthesize(&target, &[zxt], ElemType::U16, &mut stats)
            .expect("must synthesize the shuffle");
        assert!(matches!(found.root(), Op::VshuffPair { .. }), "got:\n{found}");
    }

    #[test]
    fn rediscovers_figure8_combine() {
        // Figure 8's shape: assemble a pair from two computed registers.
        let envs = envs();
        let search = SwizzleSearch::new(&envs, ctx());
        let a = HvxExpr::vmem("in", ElemType::U8, 0, 0);
        let b = HvxExpr::vmem("in", ElemType::U8, 8, 0);
        let target = HvxExpr::op(Op::Vcombine, vec![a.clone(), b.clone()]);
        let mut stats = SynthStats::default();
        let found = search
            .synthesize(&target, &[a, b], ElemType::U8, &mut stats)
            .expect("must synthesize the combine");
        assert!(matches!(found.root(), Op::Vcombine), "got:\n{found}");
    }

    #[test]
    fn reports_infeasible_within_budget() {
        // Target window far outside what the sources plus three swizzles
        // can reach: the search must exhaust its budget and decline
        // (Algorithm 2's "cannot be implemented within budget" outcome).
        let envs = envs();
        let search = SwizzleSearch::new(&envs, ctx());
        let target = HvxExpr::vmem("in", ElemType::U8, 29, 1); // other row
        let sources = vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)];
        let mut stats = SynthStats::default();
        assert!(search.synthesize(&target, &sources, ElemType::U8, &mut stats).is_none());
        assert!(stats.swizzling_queries > 10, "must have searched before giving up");
    }

    #[test]
    fn expired_deadline_declines_without_querying() {
        // A deadline already in the past: the search must issue zero
        // candidate evaluations, decline, and flag the run as
        // out-of-time rather than proved-infeasible.
        let envs = envs();
        let mut search = SwizzleSearch::new(&envs, ctx());
        search.deadline = Some(Instant::now() - std::time::Duration::from_millis(1));
        let target = HvxExpr::vmem("in", ElemType::U8, -1, 0);
        let sources =
            vec![HvxExpr::vmem("in", ElemType::U8, -8, 0), HvxExpr::vmem("in", ElemType::U8, 0, 0)];
        let mut stats = SynthStats::default();
        assert!(search.synthesize(&target, &sources, ElemType::U8, &mut stats).is_none());
        assert!(stats.deadline_exceeded, "must report the deadline, not infeasibility");
        assert_eq!(stats.swizzling_queries, 0, "no queries past an expired deadline");
    }

    #[test]
    fn observational_dedup_bounds_the_pool() {
        // rot by 1 eight times cycles back: the dedup must keep the pool
        // finite and the query count well under the naive bound.
        let envs = envs();
        let mut search = SwizzleSearch::new(&envs, ctx());
        search.max_depth = 6;
        search.max_pool = 150;
        let target = HvxExpr::vmem("in", ElemType::U8, 40, 0); // unreachable
        let sources = vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)];
        let mut stats = SynthStats::default();
        assert!(search.synthesize(&target, &sources, ElemType::U8, &mut stats).is_none());
        assert!(
            stats.swizzling_queries <= search.max_queries + 16,
            "runaway search: {} queries",
            stats.swizzling_queries
        );
    }
}
