//! Interval range analysis over the Uber-Instruction IR.
//!
//! This powers the paper's "semantic reasoning" optimizations (§7.1.2):
//! proving that a value is non-negative (so the unsigned-only `vmpyie` is
//! safe — the l2norm case) or that it fits a narrow type (so a fused
//! saturating narrow equals the unfused truncating sequence — the
//! gaussian3x3 case).

use halide_ir::analysis::Range;
use lanes::ElemType;

use uber_ir::UberExpr;

/// Sound interval for an uber-expression's lanes.
pub fn uber_range(e: &UberExpr) -> Range {
    match e {
        UberExpr::Data(l) => Range::of_type(l.ty),
        UberExpr::Bcast { value, ty } => match value {
            uber_ir::ScalarSource::Imm(v) => Range::point(*v),
            uber_ir::ScalarSource::Scalar { .. } => Range::of_type(*ty),
        },
        UberExpr::VsMpyAdd(v) => {
            let mut lo = 0i128;
            let mut hi = 0i128;
            for (input, &w) in v.inputs.iter().zip(&v.kernel) {
                let r = uber_range(input);
                let (a, b) = (r.lo * i128::from(w), r.hi * i128::from(w));
                lo += a.min(b);
                hi += a.max(b);
            }
            clamp_into(Range { lo, hi }, v.out, v.saturating)
        }
        UberExpr::VvMpyAdd(v) => {
            let mut lo = 0i128;
            let mut hi = 0i128;
            for (a, b) in &v.pairs {
                let (ra, rb) = (uber_range(a), uber_range(b));
                let products =
                    [ra.lo * rb.lo, ra.lo * rb.hi, ra.hi * rb.lo, ra.hi * rb.hi];
                lo += products.iter().copied().min().expect("non-empty");
                hi += products.iter().copied().max().expect("non-empty");
            }
            clamp_into(Range { lo, hi }, v.out, v.saturating)
        }
        UberExpr::AbsDiff(a, b) => {
            let (ra, rb) = (uber_range(a), uber_range(b));
            let lo = ra.lo - rb.hi;
            let hi = ra.hi - rb.lo;
            let r = if lo >= 0 {
                Range { lo, hi }
            } else if hi <= 0 {
                Range { lo: -hi, hi: -lo }
            } else {
                Range { lo: 0, hi: (-lo).max(hi) }
            };
            clamp_into(r, e.ty(), false)
        }
        UberExpr::Min(a, b) => {
            let (ra, rb) = (uber_range(a), uber_range(b));
            Range { lo: ra.lo.min(rb.lo), hi: ra.hi.min(rb.hi) }
        }
        UberExpr::Max(a, b) => {
            let (ra, rb) = (uber_range(a), uber_range(b));
            Range { lo: ra.lo.max(rb.lo), hi: ra.hi.max(rb.hi) }
        }
        UberExpr::Average { a, b, round } => {
            let (ra, rb) = (uber_range(a), uber_range(b));
            let r = i128::from(*round);
            Range { lo: (ra.lo + rb.lo + r) >> 1, hi: (ra.hi + rb.hi + r) >> 1 }
        }
        UberExpr::Narrow { arg, shift, round, saturating, out } => {
            let src = arg.ty();
            let r = uber_range(arg);
            let rnd = if *round && *shift > 0 { 1i128 << (shift - 1) } else { 0 };
            // The round-add wraps at the source width, so once `hi + rnd`
            // can leave the source type the interval is no longer contiguous
            // and the only sound answer is the full shifted source range.
            let shifted = if rnd > 0 && r.hi + rnd > i128::from(src.max_value()) {
                Range {
                    lo: i128::from(src.min_value()) >> shift,
                    hi: i128::from(src.max_value()) >> shift,
                }
            } else {
                Range { lo: (r.lo + rnd) >> shift, hi: (r.hi + rnd) >> shift }
            };
            clamp_into(shifted, *out, *saturating)
        }
        UberExpr::Widen { arg, .. } => uber_range(arg),
        UberExpr::Shl { arg, amount } => {
            let r = uber_range(arg);
            clamp_into(Range { lo: r.lo << amount, hi: r.hi << amount }, e.ty(), false)
        }
    }
}

fn clamp_into(r: Range, ty: ElemType, saturating: bool) -> Range {
    if saturating {
        Range {
            lo: r.lo.clamp(ty.min_value() as i128, ty.max_value() as i128),
            hi: r.hi.clamp(ty.min_value() as i128, ty.max_value() as i128),
        }
    } else if r.fits(ty) {
        r
    } else {
        Range::of_type(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::Load;
    use uber_ir::VsMpyAdd;

    #[test]
    fn conv_row_range() {
        let e = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let r = uber_range(&e);
        assert_eq!((r.lo, r.hi), (0, 1020));
        assert!(r.is_non_negative());
        assert!(!r.fits(ElemType::U8));
    }

    #[test]
    fn narrow_after_round_shift_fits_u8() {
        let wide = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let n = UberExpr::Narrow {
            arg: Box::new(wide),
            shift: 4,
            round: true,
            saturating: false,
            out: ElemType::U16,
        };
        let r = uber_range(&n);
        assert_eq!((r.lo, r.hi), (0, 64));
        assert!(r.fits(ElemType::U8));
    }

    #[test]
    fn rounding_narrow_near_source_boundary_widens() {
        // An unbounded u16 argument can wrap under the round-add, so the
        // shifted range must cover the full shifted source range rather
        // than the naive `(hi + rnd) >> shift`.
        let d = UberExpr::Data(Load { buffer: "in".into(), dx: 0, dy: 0, ty: ElemType::U16 });
        let n = UberExpr::Narrow {
            arg: Box::new(d),
            shift: 4,
            round: true,
            saturating: false,
            out: ElemType::U16,
        };
        let r = uber_range(&n);
        // Wrap makes 0 reachable (x = 0xfff8..0xffff round to 0..0), and the
        // naive hi would have been (65535 + 8) >> 4 = 4096 — out of type.
        assert_eq!((r.lo, r.hi), (0, 4095));
    }

    #[test]
    fn negative_weights_go_signed() {
        let e = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![UberExpr::Data(Load {
                buffer: "in".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })],
            kernel: vec![-2],
            saturating: false,
            out: ElemType::I16,
        });
        let r = uber_range(&e);
        assert_eq!((r.lo, r.hi), (-510, 0));
        assert!(!r.is_non_negative());
    }

    #[test]
    fn overflow_falls_back_to_type_range() {
        let e = UberExpr::conv("in", ElemType::U8, 0, 0, &[255, 255], ElemType::U8);
        let r = uber_range(&e);
        assert_eq!(r, Range::of_type(ElemType::U8));
    }
}
