//! Algorithm 2: lowering the Uber-Instruction IR to HVX.
//!
//! Each uber-instruction owns a small *grammar* of concrete HVX templates
//! (the specialization §3.1 says lifting enables). The lowerer enumerates
//! template instantiations in increasing cost under a tightening upper
//! bound β, recursively lowering sub-expressions parameterized by the
//! intermediate data layout ℓ ∈ {natural, deinterleaved} (§5.1), and keeps
//! the cheapest candidate the oracle verifies. Candidates containing data
//! movement account their verification to the swizzling stage; pure
//! compute candidates to the sketching stage (Table 1's split).

use std::collections::HashMap;
use std::time::Instant;

use hvx::{CostModel, HvxExpr, Op, ScalarOperand};
use lanes::ElemType;
use uber_ir::{ScalarSource, UberExpr, VsMpyAdd, VvMpyAdd};

use crate::stats::SynthStats;
use crate::swizzle;
use crate::verify::Verifier;

/// Layout of a register-pair value (§5.1). Single-register values are
/// always [`Layout::Natural`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Lane `i` lives at natural position `i` (`lo` holds the first half).
    Natural,
    /// Even lanes in `lo`, odd lanes in `hi` — the layout widening
    /// instructions produce.
    Deinterleaved,
}

impl Layout {
    fn other(self) -> Layout {
        match self {
            Layout::Natural => Layout::Deinterleaved,
            Layout::Deinterleaved => Layout::Natural,
        }
    }
}

/// Knobs of the lowering search (the ablation switches of DESIGN.md).
#[derive(Debug, Clone, Copy)]
pub struct LoweringOptions {
    /// Halide-level vectorization width in lanes.
    pub lanes: usize,
    /// Machine register width in bytes.
    pub vec_bytes: usize,
    /// Keep searching after the first verified implementation, tightening
    /// the cost bound β (Algorithm 2's backtracking).
    pub backtrack: bool,
    /// Explore deinterleaved intermediate layouts.
    pub layouts: bool,
    /// Restrict vector loads to aligned addresses, synthesizing `valign`
    /// for unaligned windows.
    pub aligned_loads: bool,
    /// Cooperative wall-clock deadline. When set, the candidate loops
    /// stop issuing new equivalence queries once the instant passes and
    /// synthesis returns whatever it has (usually `None`), flagging
    /// [`SynthStats::deadline_exceeded`].
    pub deadline: Option<std::time::Instant>,
    /// Cooperative cancellation flag (see [`crate::cancel`]): checked at
    /// the same sites as the deadline, so a caller can stop an in-flight
    /// search early (e.g. the serving layer when a client disconnects).
    /// Cancellation reports as [`SynthStats::deadline_exceeded`] — like a
    /// deadline, it proves nothing about the tile.
    pub cancel: Option<crate::cancel::CancelFlag>,
    /// Cap on the lifting recursion depth (a *reduced-budget* knob for
    /// degraded retries): expressions nesting deeper than this fail to
    /// lift instead of burning the budget on a deep search. `None`
    /// imposes no cap.
    pub max_lift_depth: Option<usize>,
    /// Concretize data-movement holes with the closed-form recipes only,
    /// skipping the enumerative swizzle search and its cost accounting
    /// (another reduced-budget knob: the recipe always answers, whatever
    /// it costs).
    pub naive_swizzles: bool,
}

impl Default for LoweringOptions {
    fn default() -> LoweringOptions {
        LoweringOptions {
            lanes: 128,
            vec_bytes: 128,
            backtrack: true,
            layouts: true,
            aligned_loads: false,
            deadline: None,
            cancel: None,
            max_lift_depth: None,
            naive_swizzles: false,
        }
    }
}

/// A verified lowering of an uber-expression.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The concrete HVX expression.
    pub expr: HvxExpr,
    /// The layout its value is in.
    pub layout: Layout,
}

/// Lower an uber-expression to a natural-order HVX expression.
///
/// Returns `None` when no verified implementation exists within the
/// template grammars (the caller then leaves the expression to the
/// baseline code generator).
pub fn lower_expr(
    u: &UberExpr,
    verifier: &Verifier,
    opts: LoweringOptions,
    stats: &mut SynthStats,
) -> Option<HvxExpr> {
    let mut sp = trace::span("lower", "synth");
    let swizzles_before = stats.swizzling_queries;
    let sketches_before = stats.sketching_queries;
    let verifier =
        Verifier { lanes: opts.lanes, vec_bytes: opts.vec_bytes, ..verifier.clone() };
    let mut lw = Lowerer { verifier, opts, stats, memo: HashMap::new() };
    let best = lw.lower(u, Layout::Natural);
    if sp.is_active() {
        sp.arg("sketching_queries", stats.sketching_queries - sketches_before);
        sp.arg("swizzling_queries", stats.swizzling_queries - swizzles_before);
        sp.arg("lowered", best.is_some());
    }
    Some(best?.expr)
}

struct Lowerer<'a> {
    verifier: Verifier,
    opts: LoweringOptions,
    stats: &'a mut SynthStats,
    memo: HashMap<(UberExpr, Layout), Option<Lowered>>,
}

impl Lowerer<'_> {
    fn pair_sized(&self, ty: ElemType) -> bool {
        self.opts.lanes * ty.bytes() > self.opts.vec_bytes
    }

    fn cost(&self, e: &HvxExpr) -> (u32, u32, u64) {
        CostModel::new(self.opts.lanes, self.opts.vec_bytes).cost(&e.to_program())
    }

    fn lower(&mut self, e: &UberExpr, want: Layout) -> Option<Lowered> {
        let want = if self.pair_sized(e.ty()) { want } else { Layout::Natural };
        let key = (e.clone(), want);
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        let mut cands = self.templates(e, want);
        cands.sort_by_key(|c| self.cost(c));
        let mut best: Option<Lowered> = None;
        let mut beta = (u32::MAX, u32::MAX, u64::MAX);
        for cand in cands {
            let expired = self.opts.deadline.is_some_and(|deadline| Instant::now() >= deadline);
            if expired || crate::cancel::cancelled(self.opts.cancel) {
                self.stats.deadline_exceeded = true;
                // Don't memoize: a later call with more time may succeed.
                return best;
            }
            let cost = self.cost(&cand);
            if cost >= beta {
                continue;
            }
            let has_swizzle = contains_swizzle(&cand);
            let t0 = Instant::now();
            let ok = self.verifier.equiv_uber_hvx(e, &cand, want == Layout::Deinterleaved);
            let dt = t0.elapsed();
            if has_swizzle {
                self.stats.swizzling_queries += 1;
                self.stats.swizzling_time += dt;
            } else {
                self.stats.sketching_queries += 1;
                self.stats.sketching_time += dt;
            }
            if ok {
                beta = cost;
                best = Some(Lowered { expr: cand, layout: want });
                if !self.opts.backtrack {
                    break;
                }
            }
        }
        self.memo.insert(key, best.clone());
        best
    }

    /// Lower a child so its value arrives in `layout`, converting from the
    /// other layout when that is cheaper or the only option.
    fn child_in(&mut self, e: &UberExpr, layout: Layout) -> Option<HvxExpr> {
        let direct = self.lower(e, layout);
        if !self.opts.layouts || !self.pair_sized(e.ty()) {
            return direct.map(|l| l.expr);
        }
        let alt = self.lower(e, layout.other()).map(|l| {
            swizzle::to_layout(l.expr, layout.other(), layout, e.ty(), self.stats)
        });
        match (direct, alt) {
            (Some(d), Some(a)) => {
                Some(if self.cost(&d.expr) <= self.cost(&a) { d.expr } else { a })
            }
            (Some(d), None) => Some(d.expr),
            (None, a) => a,
        }
    }

    fn load(&mut self, l: &halide_ir::Load) -> HvxExpr {
        let lanes = self.opts.lanes;
        if self.opts.aligned_loads
            && !self.opts.naive_swizzles
            && l.dx.rem_euclid(lanes as i32) != 0
        {
            // Synthesize the unaligned window from aligned loads with the
            // enumerative swizzle searcher (Figure 8's query).
            let spec: crate::envs::BufferSpec =
                [(l.buffer.clone(), l.ty)].into_iter().collect();
            let envs = crate::envs::test_envs(&spec, lanes * 4, 4, 2);
            let mut search = crate::swizzle_search::SwizzleSearch::new(
                &envs,
                crate::swizzle_search::SearchCtx {
                    x0: (lanes * 2) as i64,
                    y0: 1,
                    lanes,
                    vec_bytes: self.opts.vec_bytes,
                },
            );
            search.deadline = self.opts.deadline;
            search.cancel = self.opts.cancel;
            let target = HvxExpr::vmem(&l.buffer, l.ty, l.dx, l.dy);
            let base = l.dx.div_euclid(lanes as i32) * lanes as i32;
            let sources = vec![
                HvxExpr::vmem(&l.buffer, l.ty, base, l.dy),
                HvxExpr::vmem(&l.buffer, l.ty, base + lanes as i32, l.dy),
            ];
            if let Some(found) = search.synthesize(&target, &sources, l.ty, self.stats) {
                return found;
            }
            // Fall through to the closed-form recipe if the search was
            // exhausted.
        }
        swizzle::load_window(
            &l.buffer,
            l.ty,
            l.dx,
            l.dy,
            self.opts.lanes,
            self.opts.aligned_loads,
            self.stats,
        )
    }

    /// Fix up a produced layout to the requested one.
    fn finish(&mut self, e: HvxExpr, produced: Layout, want: Layout, ty: ElemType) -> HvxExpr {
        if !self.pair_sized(ty) || produced == want {
            e
        } else {
            swizzle::to_layout(e, produced, want, ty, self.stats)
        }
    }

    fn templates(&mut self, e: &UberExpr, want: Layout) -> Vec<HvxExpr> {
        let mut out = Vec::new();
        match e {
            UberExpr::Data(l) => {
                let base = self.load(l);
                let e2 = self.finish(base, Layout::Natural, want, l.ty);
                out.push(e2);
            }
            UberExpr::Bcast { value, ty } => {
                out.push(HvxExpr::op(
                    Op::Vsplat { value: scalar_operand(value), elem: *ty },
                    vec![],
                ));
            }
            UberExpr::Widen { arg, out: oty } => {
                if !self.pair_sized(arg.ty()) {
                    if let Some(a) = self.child_in(arg, Layout::Natural) {
                        let w = HvxExpr::op(widen_op(arg.ty()), vec![a]);
                        out.push(self.finish(w, Layout::Deinterleaved, want, *oty));
                    }
                }
            }
            UberExpr::Shl { arg, amount } => {
                if let Some(a) = self.child_in(arg, want) {
                    out.push(HvxExpr::op(
                        Op::Vasl { elem: e.ty(), shift: *amount },
                        vec![a],
                    ));
                }
            }
            UberExpr::Min(a, b) | UberExpr::Max(a, b) | UberExpr::AbsDiff(a, b) => {
                let elem = e.ty();
                let op = match e {
                    UberExpr::Min(..) => Op::Vmin { elem },
                    UberExpr::Max(..) => Op::Vmax { elem },
                    _ => Op::Vabsdiff { elem },
                };
                if let (Some(la), Some(lb)) =
                    (self.child_in(a, want), self.child_in(b, want))
                {
                    out.push(HvxExpr::op(op, vec![la, lb]));
                }
            }
            UberExpr::Average { a, b, round } => {
                if let (Some(la), Some(lb)) =
                    (self.child_in(a, want), self.child_in(b, want))
                {
                    out.push(HvxExpr::op(
                        Op::Vavg { elem: e.ty(), round: *round },
                        vec![la, lb],
                    ));
                }
            }
            UberExpr::Narrow { arg, shift, round, saturating, out: oty } => {
                out.extend(self.narrow_templates(arg, *shift, *round, *saturating, *oty, want));
            }
            UberExpr::VsMpyAdd(v) => {
                out.extend(self.vtmpy_template(v, want));
                out.extend(self.vsmpy_chunks(v, want));
            }
            UberExpr::VvMpyAdd(v) => {
                out.extend(self.vvmpy_templates(v, want));
            }
        }
        out
    }

    fn narrow_templates(
        &mut self,
        arg: &UberExpr,
        shift: u32,
        round: bool,
        saturating: bool,
        oty: ElemType,
        want: Layout,
    ) -> Vec<HvxExpr> {
        let src = arg.ty();
        let mut out = Vec::new();
        if oty.bits() == src.bits() {
            // Pure shift right (with optional rounding add). Saturation
            // into the same type after an arithmetic shift is the
            // identity, so the plain shift covers both flag settings (the
            // oracle re-checks anyway).
            if let Some(a) = self.child_in(arg, want) {
                let base = if round && shift > 0 {
                    let splat = HvxExpr::vsplat_imm(1i64 << (shift - 1), src);
                    HvxExpr::op(Op::Vadd { elem: src, sat: false }, vec![a, splat])
                } else {
                    a
                };
                out.push(HvxExpr::op(Op::Vasr { elem: src, shift }, vec![base]));
            }
            return out;
        }
        if oty.bits() * 2 != src.bits() || !self.pair_sized(src) {
            return out;
        }
        // A same-width wrapping round-shift feeding this narrow fuses into
        // one `vasr`-narrow (our ISA's rnd form rounds with wrap-add,
        // matching the unfused Halide pattern bit for bit).
        if shift == 0 {
            if let UberExpr::Narrow {
                arg: inner,
                shift: s,
                round: r,
                saturating: false,
                out: mid,
            } = arg
            {
                if *mid == src && *s > 0 {
                    if let Some(a2) = self.child_in(inner, Layout::Deinterleaved) {
                        out.push(HvxExpr::op(
                            Op::VasrNarrow {
                                elem: src,
                                shift: *s,
                                round: *r,
                                sat: saturating,
                                out: oty,
                            },
                            vec![
                                HvxExpr::op(Op::Hi, vec![a2.clone()]),
                                HvxExpr::op(Op::Lo, vec![a2]),
                            ],
                        ));
                    }
                }
            }
        }

        // Halving narrow of a pair: the fused interleaving instructions.
        let Some(a) = self.child_in(arg, Layout::Deinterleaved) else { return out };
        let hi = HvxExpr::op(Op::Hi, vec![a.clone()]);
        let lo = HvxExpr::op(Op::Lo, vec![a.clone()]);
        if shift == 0 {
            out.push(HvxExpr::op(
                Op::Vpack { elem: src, sat: saturating, out: oty },
                vec![hi.clone(), lo.clone()],
            ));
            if !saturating {
                // Saturating pack is equally cheap and sometimes the only
                // real instruction; valid whenever the range fits.
                out.push(HvxExpr::op(
                    Op::Vpack { elem: src, sat: true, out: oty },
                    vec![hi, lo],
                ));
            }
        } else {
            for sat_flag in [saturating, true] {
                out.push(HvxExpr::op(
                    Op::VasrNarrow { elem: src, shift, round, sat: sat_flag, out: oty },
                    vec![hi.clone(), lo.clone()],
                ));
            }
            // Unfused baseline shape: rounding add + per-half shift, then a
            // truncating pack (what a pattern-matcher that misses the fused
            // form emits).
            if let Some(a_nat) = self.child_in(arg, Layout::Deinterleaved) {
                let base = if round {
                    let splat = HvxExpr::vsplat_imm(1i64 << (shift - 1), src);
                    HvxExpr::op(Op::Vadd { elem: src, sat: false }, vec![a_nat, splat])
                } else {
                    a_nat
                };
                let shifted = HvxExpr::op(Op::Vasr { elem: src, shift }, vec![base]);
                out.push(HvxExpr::op(
                    Op::Vpack { elem: src, sat: saturating, out: oty },
                    vec![
                        HvxExpr::op(Op::Hi, vec![shifted.clone()]),
                        HvxExpr::op(Op::Lo, vec![shifted]),
                    ],
                ));
            }
        }
        out
    }

    /// The sliding-window template: three consecutive loads with a
    /// `[w0, w1, 1]` kernel are one `vtmpy` (Figure 4a).
    fn vtmpy_template(&mut self, v: &VsMpyAdd, want: Layout) -> Vec<HvxExpr> {
        if v.saturating || v.inputs.len() != 3 {
            return Vec::new();
        }
        let loads: Option<Vec<&halide_ir::Load>> = v
            .inputs
            .iter()
            .map(|i| match i {
                UberExpr::Data(l) => Some(l),
                _ => None,
            })
            .collect();
        let Some(loads) = loads else { return Vec::new() };
        let t = loads[0].ty;
        if t.bits() > 16
            || t.bits() * 2 != v.out.bits()
            || !loads.iter().all(|l| l.buffer == loads[0].buffer && l.dy == loads[0].dy && l.ty == t)
        {
            return Vec::new();
        }
        let mut terms: Vec<(i32, i64)> =
            loads.iter().map(|l| l.dx).zip(v.kernel.iter().copied()).collect();
        terms.sort_by_key(|&(dx, _)| dx);
        let (d0, w0) = terms[0];
        let (d1, w1) = terms[1];
        let (d2, w2) = terms[2];
        if d1 != d0 + 1 || d2 != d0 + 2 || w2 != 1 || w0.abs() > 127 || w1.abs() > 127 {
            return Vec::new();
        }
        let a = swizzle::load_window(
            &loads[0].buffer,
            t,
            d0,
            loads[0].dy,
            self.opts.lanes,
            self.opts.aligned_loads,
            self.stats,
        );
        let b = swizzle::load_window(
            &loads[0].buffer,
            t,
            d0 + self.opts.lanes as i32,
            loads[0].dy,
            self.opts.lanes,
            self.opts.aligned_loads,
            self.stats,
        );
        let e = HvxExpr::op(Op::Vtmpy { elem: t, w0, w1 }, vec![a, b]);
        vec![self.finish(e, Layout::Deinterleaved, want, v.out)]
    }

    /// The general chunked decomposition: pick an accumulator base, then
    /// fold the remaining terms in with `vmpa.acc` / `vmpy.acc` /
    /// element-wise adds. Several base choices are generated; the cost
    /// bound picks the winner.
    fn vsmpy_chunks(&mut self, v: &VsMpyAdd, want: Layout) -> Vec<HvxExpr> {
        let out_ty = v.out;
        let terms: Vec<(UberExpr, i64)> =
            v.inputs.iter().cloned().zip(v.kernel.iter().copied()).collect();
        if terms.iter().any(|(_, w)| w.unsigned_abs() >= (1 << 12)) {
            return Vec::new();
        }
        let widening = terms
            .iter()
            .any(|(t, _)| !matches!(t, UberExpr::Bcast { .. }) && t.ty().bits() * 2 == out_ty.bits());
        if !widening {
            return self.same_width_chain(v, want);
        }
        // Classify terms.
        let mut narrow: Vec<(UberExpr, i64)> = Vec::new();
        let mut wide: Vec<(UberExpr, i64)> = Vec::new();
        let mut consts: Vec<i64> = Vec::new();
        for (t, w) in &terms {
            if let UberExpr::Bcast { value: ScalarSource::Imm(c), .. } = t {
                consts.push(c * w);
            } else if t.ty().bits() * 2 == out_ty.bits() {
                narrow.push((t.clone(), *w));
            } else if t.ty().bits() == out_ty.bits() {
                wide.push((t.clone(), *w));
            } else {
                return Vec::new();
            }
        }
        if v.saturating {
            return Vec::new(); // saturating wide accumulation: no template
        }

        // Base choices: a unit-weight wide term, a unit-weight narrow term
        // via zero/sign-extension, or the first vmpa pair. Wide terms can
        // be folded in either layout (§5.1): staying deinterleaved avoids
        // a shuffle when the consumer narrows, converting to natural
        // avoids re-dealing wide values loaded from memory.
        let mut bases: Vec<(Option<usize>, Option<usize>)> = Vec::new(); // (wide base idx, narrow base idx)
        if let Some(i) = wide.iter().position(|(_, w)| *w == 1) {
            bases.push((Some(i), None));
        }
        if let Some(i) = narrow.iter().position(|(_, w)| *w == 1) {
            bases.push((None, Some(i)));
        }
        bases.push((None, None));
        let fold_layouts: &[Layout] = if wide.is_empty() || !self.opts.layouts {
            &[Layout::Deinterleaved]
        } else {
            &[Layout::Deinterleaved, Layout::Natural]
        };
        let mut variants = Vec::new();
        for &fl in fold_layouts {
            for &b in &bases {
                variants.push((b.0, b.1, fl));
            }
        }

        let mut cands = Vec::new();
        'variant: for (wbase, nbase, fold_layout) in variants {
            let mut acc: Option<HvxExpr> = None;
            let mut cur_layout = Layout::Deinterleaved;
            let mut narrow_rest: Vec<(UberExpr, i64)> = narrow.clone();
            let mut wide_rest: Vec<(UberExpr, i64)> = wide.clone();
            if let Some(i) = wbase {
                let (t, _) = wide_rest.remove(i);
                // With no narrow chunks, the whole chain can run in the
                // fold layout directly.
                let base_layout = if narrow_rest.is_empty() {
                    fold_layout
                } else {
                    Layout::Deinterleaved
                };
                let Some(b) = self.child_in(&t, base_layout) else { continue };
                acc = Some(b);
                cur_layout = base_layout;
            } else if let Some(i) = nbase {
                let (t, _) = narrow_rest.remove(i);
                let Some(b) = self.child_in(&t, Layout::Natural) else { continue };
                acc = Some(HvxExpr::op(widen_op(t.ty()), vec![b]));
            }
            // Fold narrow terms: pairs via vmpa, a leftover via vmpy.
            let mut i = 0;
            while i + 1 < narrow_rest.len() {
                let (ta, wa) = &narrow_rest[i];
                let (tb, wb) = &narrow_rest[i + 1];
                let elem = ta.ty();
                if tb.ty() != elem || wa.abs() > 127 || wb.abs() > 127 {
                    continue 'variant;
                }
                let (Some(la), Some(lb)) = (
                    self.child_in(ta, Layout::Natural),
                    self.child_in(tb, Layout::Natural),
                ) else {
                    continue 'variant;
                };
                acc = Some(match acc.take() {
                    None => HvxExpr::op(Op::Vmpa { elem, w0: *wa, w1: *wb }, vec![la, lb]),
                    Some(acc) => HvxExpr::op(
                        Op::VmpaAcc { elem, w0: *wa, w1: *wb },
                        vec![acc, la, lb],
                    ),
                });
                i += 2;
            }
            if i < narrow_rest.len() {
                let (t, w) = &narrow_rest[i];
                let elem = t.ty();
                let Some(l) = self.child_in(t, Layout::Natural) else { continue };
                acc = Some(match acc.take() {
                    None => HvxExpr::op(
                        Op::VmpyScalar { elem, scalar: ScalarOperand::Imm(*w) },
                        vec![l],
                    ),
                    Some(acc) => HvxExpr::op(
                        Op::VmpyAcc { elem, scalar: ScalarOperand::Imm(*w) },
                        vec![acc, l],
                    ),
                });
            }
            // Fold wide terms element-wise, in the chosen fold layout.
            if !wide_rest.is_empty() {
                if let Some(acc0) = acc.take() {
                    let converted = self.finish(acc0, cur_layout, fold_layout, out_ty);
                    acc = Some(converted);
                    cur_layout = fold_layout;
                }
            }
            for (t, w) in &wide_rest {
                let Some(mut l) = self.child_in(t, fold_layout) else {
                    continue 'variant;
                };
                let Some(acc0) = acc.take() else { continue 'variant };
                let op = match w {
                    1 => Op::Vadd { elem: out_ty, sat: false },
                    -1 => Op::Vsub { elem: out_ty, sat: false },
                    _ => {
                        l = HvxExpr::op(
                            Op::Vmpyi { elem: out_ty, scalar: ScalarOperand::Imm(*w) },
                            vec![l],
                        );
                        Op::Vadd { elem: out_ty, sat: false }
                    }
                };
                acc = Some(HvxExpr::op(op, vec![acc0, l]));
            }
            // Fold constants as one wide splat.
            let csum: i64 = consts.iter().sum();
            if csum != 0 || (!consts.is_empty() && acc.is_none()) {
                let splat = HvxExpr::vsplat_imm(out_ty.wrap(csum), out_ty);
                acc = Some(match acc.take() {
                    None => splat,
                    Some(acc) => {
                        HvxExpr::op(Op::Vadd { elem: out_ty, sat: false }, vec![acc, splat])
                    }
                });
            }
            if let Some(done) = acc {
                cands.push(self.finish(done, cur_layout, want, out_ty));
            }
        }
        cands
    }

    /// Non-widening chain: adds, subtracts and `vmpyi` at the output width.
    fn same_width_chain(&mut self, v: &VsMpyAdd, want: Layout) -> Vec<HvxExpr> {
        let out_ty = v.out;
        let mut terms: Vec<(UberExpr, i64)> =
            v.inputs.iter().cloned().zip(v.kernel.iter().copied()).collect();
        if terms
            .iter()
            .any(|(t, _)| !matches!(t, UberExpr::Bcast { .. }) && t.ty().bits() != out_ty.bits())
        {
            return Vec::new();
        }
        if v.saturating {
            if terms.len() == 2 && v.kernel == [1, 1] {
                let (Some(a), Some(b)) = (
                    self.child_in(&terms[0].0, want),
                    self.child_in(&terms[1].0, want),
                ) else {
                    return Vec::new();
                };
                return vec![HvxExpr::op(Op::Vadd { elem: out_ty, sat: true }, vec![a, b])];
            }
            return Vec::new();
        }
        // Unit weights first so the chain starts without a multiply.
        terms.sort_by_key(|(_, w)| w.abs() != 1);
        let mut acc: Option<HvxExpr> = None;
        for (t, w) in &terms {
            // Immediate broadcasts fold the weight into the splat.
            let (l, w) = if let UberExpr::Bcast { value: ScalarSource::Imm(c), .. } = t {
                (HvxExpr::vsplat_imm(out_ty.wrap(c * w), out_ty), 1)
            } else {
                let Some(l) = self.child_in(t, want) else { return Vec::new() };
                (l, *w)
            };
            acc = Some(match (acc.take(), w) {
                (None, 1) => l,
                (None, -1) => {
                    let zero = HvxExpr::vsplat_imm(0, out_ty);
                    HvxExpr::op(Op::Vsub { elem: out_ty, sat: false }, vec![zero, l])
                }
                (None, w) => HvxExpr::op(
                    Op::Vmpyi { elem: out_ty, scalar: ScalarOperand::Imm(w) },
                    vec![l],
                ),
                (Some(acc), 1) => {
                    HvxExpr::op(Op::Vadd { elem: out_ty, sat: false }, vec![acc, l])
                }
                (Some(acc), -1) => {
                    HvxExpr::op(Op::Vsub { elem: out_ty, sat: false }, vec![acc, l])
                }
                (Some(acc), w) => HvxExpr::op(
                    Op::VmpyiAcc { elem: out_ty, scalar: ScalarOperand::Imm(w) },
                    vec![acc, l],
                ),
            });
        }
        acc.into_iter().collect()
    }

    fn vvmpy_templates(&mut self, v: &VvMpyAdd, want: Layout) -> Vec<HvxExpr> {
        if v.saturating || v.pairs.is_empty() {
            return Vec::new();
        }
        let mut cands = Vec::new();
        // Word × halfword (the l2norm shape): 32-bit splat times a 16-bit
        // vector producing 32-bit lanes.
        if v.pairs.len() == 1 && v.out.bits() == 32 {
            let (a, b) = &v.pairs[0];
            for (w, h) in [(a, b), (b, a)] {
                if w.ty().bits() == 32 && h.ty().bits() == 16 && !self.pair_sized(h.ty()) {
                    cands.extend(self.word_half_templates(w, h, want, v.out));
                }
            }
        }
        // Widening multiply chain.
        if v.pairs.iter().all(|(a, b)| {
            let (na, nb) = (a.ty().bits(), b.ty().bits());
            na == nb && na * 2 == v.out.bits()
        }) {
            if let Some(chain) = self.widening_mul_chain(v, want) {
                cands.push(chain);
            }
        }
        cands
    }

    fn widening_mul_chain(&mut self, v: &VvMpyAdd, want: Layout) -> Option<HvxExpr> {
        let mut acc: Option<HvxExpr> = None;
        for (a, b) in &v.pairs {
            // Broadcast operands become vector-scalar multiplies.
            let (vecside, scalar) = match (a, b) {
                (UberExpr::Bcast { value, .. }, x) | (x, UberExpr::Bcast { value, .. }) => {
                    (x, Some(scalar_operand(value)))
                }
                _ => (a, None),
            };
            let elem = vecside.ty();
            let lx = self.child_in(vecside, Layout::Natural)?;
            acc = Some(match (acc.take(), scalar) {
                (None, Some(s)) => {
                    HvxExpr::op(Op::VmpyScalar { elem, scalar: s }, vec![lx])
                }
                (Some(acc), Some(s)) => {
                    HvxExpr::op(Op::VmpyAcc { elem, scalar: s }, vec![acc, lx])
                }
                (None, None) => {
                    let ly = self.child_in(b, Layout::Natural)?;
                    HvxExpr::op(Op::Vmpy { elem }, vec![lx, ly])
                }
                (Some(acc), None) => {
                    let ly = self.child_in(b, Layout::Natural)?;
                    let prod = HvxExpr::op(Op::Vmpy { elem }, vec![lx, ly]);
                    HvxExpr::op(Op::Vadd { elem: v.out, sat: false }, vec![acc, prod])
                }
            });
        }
        acc.map(|e| self.finish(e, Layout::Deinterleaved, want, v.out))
    }

    /// `vmpyie`/`vmpyio` pairs for word × halfword products (Figure 12,
    /// l2norm). The `vmpyie` form multiplies *unsigned* even halfwords, so
    /// it is gated on a non-negativity proof; the baseline form shifts the
    /// even halfwords into odd position with `vaslw` instead.
    fn word_half_templates(
        &mut self,
        w: &UberExpr,
        h: &UberExpr,
        want: Layout,
        out_ty: ElemType,
    ) -> Vec<HvxExpr> {
        let Some(splat_pair) = self.child_in(w, Layout::Natural) else { return Vec::new() };
        // Scalar-register operand: one register's worth of the broadcast.
        let wreg = if self.pair_sized(w.ty()) {
            HvxExpr::op(Op::Lo, vec![splat_pair])
        } else {
            splat_pair
        };
        let Some(hreg) = self.child_in(h, Layout::Natural) else { return Vec::new() };
        let odd = HvxExpr::op(Op::Vmpyio, vec![wreg.clone(), hreg.clone()]);
        let mut cands = Vec::new();
        if self.verifier.proves_non_negative(h) {
            let even = HvxExpr::op(Op::Vmpyie, vec![wreg.clone(), hreg.clone()]);
            cands.push(self.finish(
                HvxExpr::op(Op::Vcombine, vec![odd.clone(), even]),
                Layout::Deinterleaved,
                want,
                out_ty,
            ));
        }
        let shifted = HvxExpr::op(Op::Vasl { elem: ElemType::I32, shift: 16 }, vec![hreg]);
        let even = HvxExpr::op(Op::Vmpyio, vec![wreg, shifted]);
        cands.push(self.finish(
            HvxExpr::op(Op::Vcombine, vec![odd, even]),
            Layout::Deinterleaved,
            want,
            out_ty,
        ));
        cands
    }
}

fn widen_op(t: ElemType) -> Op {
    if t.is_signed() {
        Op::Vsxt { elem: t }
    } else {
        Op::Vzxt { elem: t }
    }
}

fn scalar_operand(s: &ScalarSource) -> ScalarOperand {
    match s {
        ScalarSource::Imm(v) => ScalarOperand::Imm(*v),
        ScalarSource::Scalar { buffer, x, dy } => {
            ScalarOperand::Load { buffer: buffer.clone(), x: *x, dy: *dy }
        }
    }
}

fn contains_swizzle(e: &HvxExpr) -> bool {
    let op = e.root();
    (op.is_swizzle() && !matches!(op, Op::Vmem { .. } | Op::Vsplat { .. }))
        || e.args().iter().any(contains_swizzle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SynthStats;

    fn opts() -> LoweringOptions {
        LoweringOptions { lanes: 8, vec_bytes: 8, ..LoweringOptions::default() }
    }

    fn lower(u: &UberExpr) -> Option<HvxExpr> {
        let mut verifier = Verifier::fast();
        verifier.lanes = 8;
        let mut stats = SynthStats::default();
        lower_expr(u, &verifier, opts(), &mut stats)
    }

    fn count_op(e: &HvxExpr, f: &dyn Fn(&Op) -> bool) -> usize {
        usize::from(f(e.root())) + e.args().iter().map(|a| count_op(a, f)).sum::<usize>()
    }

    #[test]
    fn three_tap_window_lowers_to_vtmpy() {
        let u = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let e = lower(&u).expect("must lower");
        assert!(
            count_op(&e, &|o| matches!(o, Op::Vtmpy { w0: 1, w1: 2, .. })) == 1,
            "expected a vtmpy, got:\n{e}"
        );
        // Natural-order output requires one shuffle after the vtmpy.
        assert_eq!(count_op(&e, &|o| matches!(o, Op::VshuffPair { .. })), 1);
    }

    #[test]
    fn column_sum_lowers_to_vmpa_acc_with_zxt_base() {
        // Loads differ in dy, so vtmpy does not apply: the winner is
        // vmpa.acc(vzxt(..), .., 2, 1) — Figure 4b.
        let mk = |dy| UberExpr::Data(halide_ir::Load {
            buffer: "in".into(),
            dx: 0,
            dy,
            ty: ElemType::U8,
        });
        let u = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![mk(-1), mk(0), mk(1)],
            kernel: vec![1, 2, 1],
            saturating: false,
            out: ElemType::U16,
        });
        let e = lower(&u).expect("must lower");
        assert_eq!(count_op(&e, &|o| matches!(o, Op::VmpaAcc { .. })), 1, "got:\n{e}");
        assert_eq!(count_op(&e, &|o| matches!(o, Op::Vzxt { .. })), 1);
    }

    #[test]
    fn fused_narrow_lowers_to_vasr_narrow() {
        let wide = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let u = UberExpr::Narrow {
            arg: Box::new(wide),
            shift: 4,
            round: true,
            saturating: true,
            out: ElemType::U8,
        };
        let e = lower(&u).expect("must lower");
        assert_eq!(
            count_op(&e, &|o| matches!(o, Op::VasrNarrow { shift: 4, round: true, .. })),
            1,
            "got:\n{e}"
        );
        // The narrow consumes the deinterleaved pair directly: no shuffle.
        assert_eq!(count_op(&e, &|o| matches!(o, Op::VshuffPair { .. })), 0, "got:\n{e}");
    }

    #[test]
    fn widening_add_lowers_to_vmpy_acc() {
        // wide + widen(narrow) == vmpy-acc(wide, narrow, 1) — Figure 12,
        // average_pool.
        let wide = UberExpr::Data(halide_ir::Load {
            buffer: "w".into(),
            dx: 0,
            dy: 0,
            ty: ElemType::U16,
        });
        let narrow = UberExpr::Data(halide_ir::Load {
            buffer: "n".into(),
            dx: 0,
            dy: 0,
            ty: ElemType::U8,
        });
        let u = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![wide, narrow],
            kernel: vec![1, 1],
            saturating: false,
            out: ElemType::U16,
        });
        let e = lower(&u).expect("must lower");
        assert_eq!(count_op(&e, &|o| matches!(o, Op::VmpyAcc { .. })), 1, "got:\n{e}");
    }

    #[test]
    fn saturating_add_lowers_to_vadd_sat() {
        let mk = |dx| UberExpr::Data(halide_ir::Load {
            buffer: "in".into(),
            dx,
            dy: 0,
            ty: ElemType::U8,
        });
        let u = UberExpr::VsMpyAdd(VsMpyAdd {
            inputs: vec![mk(0), mk(1)],
            kernel: vec![1, 1],
            saturating: true,
            out: ElemType::U8,
        });
        let e = lower(&u).expect("must lower");
        assert!(matches!(e.root(), Op::Vadd { sat: true, .. }), "got:\n{e}");
    }

    #[test]
    fn runtime_scalar_dot_uses_vmpy_acc_chain() {
        // sum_k splat(w[k]) * in(x+k): the matmul shape.
        let pair = |k: i32| {
            (
                UberExpr::Bcast {
                    value: ScalarSource::Scalar { buffer: "w".into(), x: k, dy: 0 },
                    ty: ElemType::U8,
                },
                UberExpr::Data(halide_ir::Load {
                    buffer: "in".into(),
                    dx: k,
                    dy: 0,
                    ty: ElemType::U8,
                }),
            )
        };
        let u = UberExpr::VvMpyAdd(VvMpyAdd {
            pairs: vec![pair(0), pair(1)],
            saturating: false,
            out: ElemType::U16,
        });
        let e = lower(&u).expect("must lower");
        assert_eq!(count_op(&e, &|o| matches!(o, Op::VmpyScalar { .. })), 1, "got:\n{e}");
        assert_eq!(count_op(&e, &|o| matches!(o, Op::VmpyAcc { .. })), 1, "got:\n{e}");
    }

    #[test]
    fn stats_count_queries() {
        let u = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let mut verifier = Verifier::fast();
        verifier.lanes = 8;
        let mut stats = SynthStats::default();
        lower_expr(&u, &verifier, opts(), &mut stats).unwrap();
        assert!(stats.sketching_queries + stats.swizzling_queries > 0);
    }
}
