//! Synthesis-rule and opcode coverage counters for the conformance
//! harness (`crates/conform`).
//!
//! Two instrumentation points:
//!
//! * **Lifting rules**: every *accepted* candidate in [`crate::lift`] is
//!   produced by one named rule site (the catalog below). Under the
//!   `coverage` feature each acceptance bumps a relaxed atomic counter;
//!   without the feature [`record_rule`] compiles to nothing, so the
//!   default build is unchanged.
//! * **HVX opcodes**: [`record_program`] folds a compiled program's
//!   instruction mnemonics into a histogram, measured against the
//!   [`OPCODES`] catalog of every mnemonic the ISA model can emit.
//!
//! A conformance run snapshots both tables at the end and reports which
//! rules and opcodes its corpus never reached, so new expressions can be
//! seeded toward the gaps (see `conform --coverage-out`).

/// Every named lifting-rule site in [`crate::lift`], in catalog order.
/// The names are stable identifiers (they appear in coverage reports and
/// waiver tables): `<halide-op>.<what the rule does>`.
pub const RULES: &[&str] = &[
    "leaf.load",
    "leaf.imm-broadcast",
    "leaf.scalar-broadcast",
    "addsub.vsmpy-update",
    "addsub.vsmpy-extend",
    "add.vvmpy-merge",
    "mul.imm-weight-fold",
    "mul.widen-strip-vvmpy",
    "mul.vvmpy-extend",
    "min.extend",
    "max.extend",
    "absd.extend",
    "shl.weight-fold",
    "shl.extend",
    "shr.average",
    "narrow.widen-identity",
    "narrow.deepen",
    "narrow.strip-clamp",
    "narrow.strip-rounding",
    "narrow.fuse",
    "widen.vsmpy-output",
    "widen.extend",
];

/// Every instruction mnemonic [`hvx::Op::mnemonic`] can render — the
/// measuring stick for opcode coverage. Kept in sync by the
/// `opcode_catalog_matches_the_isa` test below.
pub const OPCODES: &[&str] = &[
    "vmem",
    "vsplat",
    "vadd",
    "vadd:sat",
    "vsub",
    "vsub:sat",
    "vavg",
    "vavg:rnd",
    "vnavg",
    "vabsdiff",
    "vmax",
    "vmin",
    "vand",
    "vor",
    "vxor",
    "vnot",
    "vasl",
    "vasr",
    "vlsr",
    "vasr-narrow",
    "vasr-narrow:rnd",
    "vasr-narrow:sat",
    "vasr-narrow:rnd:sat",
    "vmpy",
    "vmpy-acc",
    "vmpyi",
    "vmpyi-acc",
    "vmpyie",
    "vmpyio",
    "vmpa",
    "vmpa-acc",
    "vtmpy",
    "vtmpy-acc",
    "vdmpy",
    "vdmpy-acc",
    "vrmpy",
    "vrmpy-acc",
    "vpack:sat",
    "vshuffe",
    "vcombine",
    "lo",
    "hi",
    "vshuffvdd",
    "vdealvdd",
    "valign",
    "vror",
    "vzxt",
    "vsxt",
];

#[cfg(feature = "coverage")]
mod counters {
    use std::sync::atomic::{AtomicU64, Ordering};

    const N_RULES: usize = super::RULES.len();
    const N_OPS: usize = super::OPCODES.len();
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    static RULE_HITS: [AtomicU64; N_RULES] = [ZERO; N_RULES];
    static OP_HITS: [AtomicU64; N_OPS] = [ZERO; N_OPS];

    pub(super) fn bump_rule(site: &str) {
        if let Some(i) = super::RULES.iter().position(|r| *r == site) {
            RULE_HITS[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(super) fn bump_op(mnemonic: &str) {
        if let Some(i) = super::OPCODES.iter().position(|o| *o == mnemonic) {
            OP_HITS[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(super) fn rule_hits() -> Vec<u64> {
        RULE_HITS.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    pub(super) fn op_hits() -> Vec<u64> {
        OP_HITS.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    pub(super) fn reset() {
        for c in &RULE_HITS {
            c.store(0, Ordering::Relaxed);
        }
        for c in &OP_HITS {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// Record one accepted firing of the named lifting-rule site. A no-op
/// without the `coverage` feature.
#[inline]
pub fn record_rule(site: &'static str) {
    #[cfg(feature = "coverage")]
    counters::bump_rule(site);
    #[cfg(not(feature = "coverage"))]
    let _ = site;
}

/// Fold a compiled HVX program's instruction mnemonics into the opcode
/// histogram. A no-op without the `coverage` feature.
pub fn record_program(program: &hvx::Program) {
    #[cfg(feature = "coverage")]
    for instr in program.instrs() {
        counters::bump_op(&instr.op.mnemonic());
    }
    #[cfg(not(feature = "coverage"))]
    let _ = program;
}

/// Per-rule hit counts in [`RULES`] order (all zero without the
/// `coverage` feature).
pub fn rule_counts() -> Vec<(&'static str, u64)> {
    #[cfg(feature = "coverage")]
    {
        RULES.iter().copied().zip(counters::rule_hits()).collect()
    }
    #[cfg(not(feature = "coverage"))]
    {
        RULES.iter().map(|r| (*r, 0)).collect()
    }
}

/// Per-opcode hit counts in [`OPCODES`] order (all zero without the
/// `coverage` feature).
pub fn opcode_counts() -> Vec<(&'static str, u64)> {
    #[cfg(feature = "coverage")]
    {
        OPCODES.iter().copied().zip(counters::op_hits()).collect()
    }
    #[cfg(not(feature = "coverage"))]
    {
        OPCODES.iter().map(|o| (*o, 0)).collect()
    }
}

/// Zero every counter (a conformance run resets before it starts so the
/// report reflects only its own corpus).
pub fn reset() {
    #[cfg(feature = "coverage")]
    counters::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_are_unique() {
        for (i, r) in RULES.iter().enumerate() {
            assert!(!RULES[i + 1..].contains(r), "duplicate rule {r}");
        }
        for (i, o) in OPCODES.iter().enumerate() {
            assert!(!OPCODES[i + 1..].contains(o), "duplicate opcode {o}");
        }
    }

    #[test]
    fn snapshots_cover_the_catalogs() {
        let rules = rule_counts();
        assert_eq!(rules.len(), RULES.len());
        let ops = opcode_counts();
        assert_eq!(ops.len(), OPCODES.len());
    }

    #[cfg(feature = "coverage")]
    #[test]
    fn recording_is_visible_in_snapshots_and_reset_clears() {
        reset();
        record_rule("min.extend");
        record_rule("min.extend");
        let hits: std::collections::HashMap<_, _> = rule_counts().into_iter().collect();
        assert_eq!(hits["min.extend"], 2);
        reset();
        let hits: std::collections::HashMap<_, _> = rule_counts().into_iter().collect();
        assert_eq!(hits["min.extend"], 0);
    }
}
