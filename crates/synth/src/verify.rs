//! The equivalence oracle.
//!
//! Candidates are screened by lane-0-first differential testing (the
//! paper's §4.1 incremental pruning), then full-lane testing over
//! adversarial and randomized environments at two vector widths. Lifting
//! candidates that survive screening are finally *proved* with a
//! bit-vector SMT query over a symbolic tile window (DESIGN.md documents
//! this split of duties between testing and proof).

use halide_ir::{Env, EvalCtx, Expr};
use hvx::{HvxExpr, Op};
use lanes::{ElemType, Vector};
use smt::{BvSolver, Context, SmtResult};
use uber_ir::{eval_uber, ScalarSource, UberExpr};

use crate::encode::{encode_halide_lane, encode_uber_lane};
use crate::envs::{test_envs, BufferSpec};

/// Geometry of the differential test tile.
const MARGIN_X: i64 = 32;
const MARGIN_Y: i64 = 8;



/// The equivalence oracle used by all three synthesis stages.
#[derive(Debug, Clone)]
pub struct Verifier {
    /// Primary differential width in lanes.
    pub lanes: usize,
    /// Machine register width in bytes when executing HVX candidates.
    pub vec_bytes: usize,
    /// Secondary differential width (catches width-dependent bugs).
    pub alt_lanes: usize,
    /// Number of seeded-random environments (on top of the adversarial
    /// ones).
    pub random_envs: usize,
    /// Whether surviving lifting candidates are SMT-proved.
    pub use_smt: bool,
    /// Number of lanes included in the SMT query.
    pub smt_lanes: usize,
    /// CDCL conflict budget per SMT proof; beyond it the (already
    /// differential-tested) candidate is accepted without a proof.
    pub smt_conflict_budget: u64,
    /// Also prove lowering steps with the symbolic HVX executor (bounded
    /// to the target width; off by default — lowering is otherwise
    /// verified differentially).
    pub smt_lowering: bool,
}

impl Default for Verifier {
    fn default() -> Verifier {
        Verifier {
            lanes: 16,
            vec_bytes: 16,
            alt_lanes: 8,
            random_envs: 10,
            use_smt: true,
            smt_lanes: 2,
            smt_conflict_budget: 50_000,
            smt_lowering: false,
        }
    }
}

fn add_halide_loads(e: &Expr, spec: &mut BufferSpec) {
    halide_ir::analysis::visit(e, &mut |n| match n {
        Expr::Load(l) => {
            spec.insert(l.buffer.clone(), l.ty);
        }
        Expr::BroadcastLoad(b) => {
            spec.insert(b.buffer.clone(), b.ty);
        }
        _ => {}
    });
}

fn add_uber_loads(e: &UberExpr, spec: &mut BufferSpec) {
    match e {
        UberExpr::Data(l) => {
            spec.insert(l.buffer.clone(), l.ty);
        }
        UberExpr::Bcast { value: ScalarSource::Scalar { buffer, .. }, ty } => {
            spec.insert(buffer.clone(), *ty);
        }
        _ => {}
    }
    for c in e.children() {
        add_uber_loads(c, spec);
    }
}

fn add_hvx_loads(e: &HvxExpr, spec: &mut BufferSpec) {
    match e.root() {
        Op::Vmem { buffer, elem, .. } => {
            spec.insert(buffer.clone(), *elem);
        }
        Op::Vsplat { value: hvx::ScalarOperand::Load { buffer, .. }, elem } => {
            spec.insert(buffer.clone(), *elem);
        }
        _ => {}
    }
    for a in e.args() {
        add_hvx_loads(a, spec);
    }
}

/// Rearrange natural-order lanes into deinterleaved pair order (even lanes
/// first, then odd) — the layout a widening HVX instruction leaves a pair
/// in, flattened to natural register order `lo ++ hi`.
pub fn deinterleaved_order(v: &Vector) -> Vector {
    let n = v.lanes();
    Vector::from_fn(v.ty(), n, |i| {
        if i < n / 2 {
            v.get(2 * i)
        } else {
            v.get(2 * (i - n / 2) + 1)
        }
    })
}

impl Verifier {
    /// A verifier with small widths for fast unit tests.
    pub fn fast() -> Verifier {
        Verifier {
            lanes: 8,
            vec_bytes: 8,
            alt_lanes: 4,
            random_envs: 6,
            use_smt: true,
            smt_lanes: 2,
            smt_conflict_budget: 50_000,
            smt_lowering: false,
        }
    }

    fn envs_for(&self, spec: &BufferSpec, lanes: usize) -> Vec<Env> {
        let width = lanes + 2 * MARGIN_X as usize;
        let height = 2 * MARGIN_Y as usize + 1;
        test_envs(spec, width, height, self.random_envs)
    }

    /// Differential + SMT equivalence of a Halide expression and an
    /// uber-expression (the lifting oracle).
    pub fn equiv_halide_uber(&self, h: &Expr, u: &UberExpr) -> bool {
        if h.ty() != u.ty() {
            return false;
        }
        let mut spec = BufferSpec::new();
        add_halide_loads(h, &mut spec);
        add_uber_loads(u, &mut spec);
        for &lanes in &[self.lanes, self.alt_lanes] {
            let envs = self.envs_for(&spec, lanes);
            // Lane-0-first pruning pass.
            for env in &envs {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes: 1 };
                let (Ok(a), Ok(b)) = (halide_ir::eval(h, &ctx), eval_uber(u, &ctx)) else {
                    return false;
                };
                if a.get(0) != b.get(0) {
                    return false;
                }
            }
            for env in &envs {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes };
                let (Ok(a), Ok(b)) = (halide_ir::eval(h, &ctx), eval_uber(u, &ctx)) else {
                    return false;
                };
                if a != b {
                    return false;
                }
            }
        }
        if self.use_smt {
            return self.smt_equiv(h, u);
        }
        true
    }

    fn smt_equiv(&self, h: &Expr, u: &UberExpr) -> bool {
        // Fast path: wrap-free linear combinations are decided exactly by
        // coefficient comparison (most multiply-add lifting queries).
        if let Some(eq) = crate::linear::decide_linear(h, u) {
            return eq;
        }
        let mut ctx = Context::new();
        let mut any_ne = ctx.ff();
        for lane in 0..self.smt_lanes {
            let th = encode_halide_lane(&mut ctx, h, lane);
            let tu = encode_uber_lane(&mut ctx, u, lane);
            let ne = ctx.ne(th, tu);
            any_ne = ctx.or(any_ne, ne);
        }
        let mut solver = BvSolver::new(&ctx);
        solver.assert_term(any_ne);
        match solver.check_limited(self.smt_conflict_budget) {
            Some(r) => r == SmtResult::Unsat,
            // Proof effort exhausted: fall back on the differential
            // evidence that already screened this candidate (documented in
            // DESIGN.md's verification-strategy table).
            None => true,
        }
    }

    /// Differential equivalence of an uber-expression and a lowered HVX
    /// expression (the sketch/swizzle oracle). `deinterleaved` states the
    /// layout the HVX value is expected in.
    pub fn equiv_uber_hvx(&self, u: &UberExpr, h: &HvxExpr, deinterleaved: bool) -> bool {
        let out_ty = u.ty();
        let mut spec = BufferSpec::new();
        add_uber_loads(u, &mut spec);
        add_hvx_loads(h, &mut spec);
        // Lowered code is width-specific (sliding-window operands embed the
        // vector length), so only the target width is meaningful here.
        {
            let lanes = self.lanes;
            let envs = self.envs_for(&spec, lanes);
            for env in &envs {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes };
                let Ok(expected) = eval_uber(u, &ctx) else { return false };
                let expected =
                    if deinterleaved { deinterleaved_order(&expected) } else { expected };
                let hctx = hvx::ExecCtx {
                    env,
                    x0: MARGIN_X,
                    y0: MARGIN_Y,
                    lanes,
                    vec_bytes: self.vec_bytes,
                };
                let Ok(got) = h.eval_ctx(&hctx) else { return false };
                if got.len() != expected.lanes() * out_ty.bytes() {
                    return false;
                }
                if got.typed_lanes(out_ty) != expected {
                    return false;
                }
            }
        }
        if self.smt_lowering {
            if let Some(proved) = crate::symexec::smt_equiv_uber_hvx(
                u,
                h,
                self.lanes,
                self.vec_bytes,
                deinterleaved,
                self.smt_conflict_budget,
            ) {
                return proved;
            }
            // Unsupported op or budget exhausted: the differential
            // evidence stands.
        }
        true
    }

    /// End-to-end differential check: Halide expression against the final
    /// lowered HVX expression in natural order.
    pub fn equiv_halide_hvx(&self, e: &Expr, h: &HvxExpr) -> bool {
        let out_ty = e.ty();
        let mut spec = BufferSpec::new();
        add_halide_loads(e, &mut spec);
        add_hvx_loads(h, &mut spec);
        {
            let lanes = self.lanes;
            let envs = self.envs_for(&spec, lanes);
            for env in &envs {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes };
                let Ok(expected) = halide_ir::eval(e, &ctx) else { return false };
                let hctx = hvx::ExecCtx {
                    env,
                    x0: MARGIN_X,
                    y0: MARGIN_Y,
                    lanes,
                    vec_bytes: self.vec_bytes,
                };
                let Ok(got) = h.eval_ctx(&hctx) else { return false };
                if got.len() != expected.lanes() * out_ty.bytes()
                    || got.typed_lanes(out_ty) != expected
                {
                    return false;
                }
            }
        }
        true
    }

    /// Prove a lane-invariant property of an uber-expression by interval
    /// analysis: used for the "semantic reasoning" candidates (§7.1.2).
    pub fn proves_non_negative(&self, u: &UberExpr) -> bool {
        crate::range::uber_range(u).is_non_negative()
    }

    /// Whether the value range of `u` provably fits `ty`.
    pub fn proves_fits(&self, u: &UberExpr, ty: ElemType) -> bool {
        crate::range::uber_range(u).fits(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use halide_ir::Load;

    fn v() -> Verifier {
        Verifier::fast()
    }

    #[test]
    fn accepts_correct_lift() {
        let h = hb::add(
            hb::mul(hb::widen(hb::load("in", ElemType::U8, 0, 0)), hb::bcast(2, ElemType::U16)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[2, 1], ElemType::U16);
        assert!(v().equiv_halide_uber(&h, &u));
    }

    #[test]
    fn rejects_wrong_lift() {
        let h = hb::add(
            hb::widen(hb::load("in", ElemType::U8, 0, 0)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 2], ElemType::U16);
        assert!(!v().equiv_halide_uber(&h, &u));
    }

    #[test]
    fn rejects_type_mismatch() {
        let h = hb::load("in", ElemType::U8, 0, 0);
        let u = UberExpr::Data(Load { buffer: "in".into(), dx: 0, dy: 0, ty: ElemType::U16 });
        assert!(!v().equiv_halide_uber(&h, &u));
    }

    #[test]
    fn hvx_vtmpy_implements_conv_deinterleaved() {
        let u = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let lanes = 8; // verifier's fast width
        let hv = HvxExpr::op(
            Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, -1, 0),
                HvxExpr::vmem("in", ElemType::U8, -1 + lanes, 0),
            ],
        );
        // vtmpy leaves the pair deinterleaved: equivalence holds only under
        // the deinterleaved layout, and the verifier distinguishes the two.
        let mut ver = v();
        ver.alt_lanes = 8; // vtmpy's second operand offset bakes in the width
        assert!(ver.equiv_uber_hvx(&u, &hv, true));
        assert!(!ver.equiv_uber_hvx(&u, &hv, false));
    }

    #[test]
    fn deinterleaved_order_roundtrip() {
        let nat = Vector::from_fn(ElemType::U16, 8, |i| i as i64);
        let de = deinterleaved_order(&nat);
        assert_eq!(de.as_slice(), &[0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn range_proofs() {
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 2, 1], ElemType::U16);
        assert!(v().proves_non_negative(&u));
        assert!(v().proves_fits(&u, ElemType::U16));
        assert!(!v().proves_fits(&u, ElemType::U8));
    }
}
