//! The equivalence oracle.
//!
//! Candidates are screened by lane-0-first differential testing (the
//! paper's §4.1 incremental pruning), then full-lane testing over
//! adversarial and randomized environments at two vector widths. Lifting
//! candidates that survive screening are finally *proved* with a
//! bit-vector SMT query over a symbolic tile window (DESIGN.md documents
//! this split of duties between testing and proof).
//!
//! The oracle memoizes its hot path (on by default, [`Verifier::memoize`]):
//! test-environment families are generated once per buffer signature, SMT
//! terms are hash-consed in one shared [`SharedSolver`] context, and full
//! verdicts are cached keyed by the canonicalized (alpha-renamed) query
//! pair plus the oracle configuration. Clones of a `Verifier` — including
//! the re-pinned clones the lowering stages make — share one memo, so a
//! query answered during lifting is free when sketch synthesis asks again.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use halide_ir::{Env, EvalCtx, Expr};
use hvx::{HvxExpr, Op};
use lanes::{ElemType, Vector};
use smt::{Context, SharedSolver};
use uber_ir::{eval_uber, ScalarSource, UberExpr};

use crate::encode::{encode_halide_lane, encode_uber_lane};
use crate::envs::{test_envs, BufferSpec};

/// Geometry of the differential test tile.
const MARGIN_X: i64 = 32;
const MARGIN_Y: i64 = 8;

/// The equivalence oracle used by all three synthesis stages.
#[derive(Debug, Clone)]
pub struct Verifier {
    /// Primary differential width in lanes.
    pub lanes: usize,
    /// Machine register width in bytes when executing HVX candidates.
    pub vec_bytes: usize,
    /// Secondary differential width (catches width-dependent bugs).
    pub alt_lanes: usize,
    /// Number of seeded-random environments (on top of the adversarial
    /// ones).
    pub random_envs: usize,
    /// Whether surviving lifting candidates are SMT-proved.
    pub use_smt: bool,
    /// Number of lanes included in the SMT query.
    pub smt_lanes: usize,
    /// CDCL conflict budget per SMT proof; beyond it the (already
    /// differential-tested) candidate is accepted without a proof.
    pub smt_conflict_budget: u64,
    /// Also prove lowering steps with the symbolic HVX executor (bounded
    /// to the target width; off by default — lowering is otherwise
    /// verified differentially).
    pub smt_lowering: bool,
    /// Memoize verdicts, test environments, and SMT terms across queries.
    /// Off reproduces the unmemoized path exactly (fresh contexts and
    /// envs per query); verdicts are identical either way.
    pub memoize: bool,
    /// Fan lifting candidate screening across helper threads drawn from
    /// [`crate::pool`]. Winner selection is input-order equivalent, so
    /// output programs are byte-identical to the serial path.
    pub parallel_lifting: bool,
    /// Shared memo state (verdict cache, env cache, SMT context, query
    /// counters). Clones share it; a fresh handle starts cold.
    pub memo: MemoHandle,
}

impl Default for Verifier {
    fn default() -> Verifier {
        Verifier {
            lanes: 16,
            vec_bytes: 16,
            alt_lanes: 8,
            random_envs: 10,
            use_smt: true,
            smt_lanes: 2,
            smt_conflict_budget: 50_000,
            smt_lowering: false,
            memoize: true,
            parallel_lifting: true,
            memo: MemoHandle::default(),
        }
    }
}

/// Point-in-time reading of the verifier's monotone query counters.
/// Subtract two snapshots (see [`MemoSnapshot::delta_since`]) to attribute
/// work to one compilation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoSnapshot {
    /// SMT solver queries issued (counted with memoization on or off).
    pub smt_queries: u64,
    /// Nanoseconds spent inside SMT queries.
    pub smt_time_nanos: u64,
    /// Verdict-cache hits.
    pub verdict_hits: u64,
    /// Env-cache hits.
    pub env_hits: u64,
}

impl MemoSnapshot {
    /// The counter increments between `earlier` and `self`.
    pub fn delta_since(&self, earlier: &MemoSnapshot) -> MemoSnapshot {
        MemoSnapshot {
            smt_queries: self.smt_queries - earlier.smt_queries,
            smt_time_nanos: self.smt_time_nanos - earlier.smt_time_nanos,
            verdict_hits: self.verdict_hits - earlier.verdict_hits,
            env_hits: self.env_hits - earlier.env_hits,
        }
    }

    /// SMT time as a [`Duration`].
    pub fn smt_time(&self) -> Duration {
        Duration::from_nanos(self.smt_time_nanos)
    }
}

/// The oracle configuration fields a verdict depends on. Embedded in every
/// cache key so re-pinned clones (different lanes) sharing one memo can
/// never serve each other stale verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct OracleConfig {
    lanes: usize,
    vec_bytes: usize,
    alt_lanes: usize,
    random_envs: usize,
    use_smt: bool,
    smt_lanes: usize,
    smt_conflict_budget: u64,
    smt_lowering: bool,
}

/// A memoized equivalence query.
#[derive(PartialEq, Eq, Hash)]
enum VerdictKey {
    /// Lifting oracle: Halide vs uber, canonicalized by joint buffer
    /// alpha-renaming.
    HalideUber { cfg: OracleConfig, h: Expr, u: UberExpr },
    /// Sketch/swizzle oracle.
    UberHvx { cfg: OracleConfig, deinterleaved: bool, u: UberExpr, h: HvxExpr },
    /// Final end-to-end check.
    HalideHvx { cfg: OracleConfig, e: Expr, h: HvxExpr },
}

/// A memoized SMT proof outcome, keyed by the offset-translated canonical
/// pair (see [`Canon::proof`]): the solver's result is a function of the
/// term DAG alone, so translated copies of one query share one solve.
#[derive(PartialEq, Eq, Hash)]
struct ProofKey {
    smt_lanes: usize,
    budget: u64,
    h: Expr,
    u: UberExpr,
}

/// A compact, stable-within-a-run fingerprint of a proof key, used to
/// correlate repeated SMT queries in trace output without serializing
/// the full expression pair into every span.
fn proof_fingerprint(key: &ProofKey) -> String {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    format!("{:016x}", h.finish())
}

/// The proof map is process-global rather than per-[`MemoHandle`]: the key
/// carries every proof-relevant parameter and the encoder and solver are
/// deterministic, so an outcome is a pure function of the key no matter
/// which `Rake` instance computed it. Harness runs that build one `Rake`
/// per workload still share proofs for the recurring stencil/matmul query
/// shapes. Hit counters stay per-handle (only storage is shared).
fn global_proofs() -> &'static Mutex<HashMap<ProofKey, Option<bool>>> {
    static PROOFS: OnceLock<Mutex<HashMap<ProofKey, Option<bool>>>> = OnceLock::new();
    PROOFS.get_or_init(Mutex::default)
}

/// Env-cache key: (buffer signature, lanes, random env count).
type EnvKey = (BufferSpec, usize, usize);

#[derive(Default)]
struct MemoState {
    solver: SharedSolver,
    verdicts: Mutex<HashMap<VerdictKey, bool>>,
    envs: Mutex<HashMap<EnvKey, Arc<Vec<Env>>>>,
    smt_queries: AtomicU64,
    smt_nanos: AtomicU64,
    verdict_hits: AtomicU64,
    env_hits: AtomicU64,
}

/// Recover a possibly-poisoned cache lock: the maps hold plain data whose
/// invariants hold between every insert, so a payload panicked elsewhere
/// (e.g. injected by the driver's chaos plane) must not cascade here.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared handle to a verifier's memo state. Cloning shares the state
/// (the intended per-[`rake::Rake`] scope); `MemoHandle::default()` starts
/// a fresh, cold memo.
#[derive(Clone, Default)]
pub struct MemoHandle(Arc<MemoState>);

impl std::fmt::Debug for MemoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoHandle")
            .field("verdicts", &lock(&self.0.verdicts).len())
            .field("proofs", &lock(global_proofs()).len())
            .field("envs", &lock(&self.0.envs).len())
            .field("smt_queries", &self.0.smt_queries.load(Ordering::Relaxed))
            .field("verdict_hits", &self.0.verdict_hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl MemoHandle {
    fn lookup(&self, key: &VerdictKey) -> Option<bool> {
        let hit = lock(&self.0.verdicts).get(key).copied();
        if hit.is_some() {
            self.0.verdict_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn insert(&self, key: VerdictKey, verdict: bool) {
        lock(&self.0.verdicts).insert(key, verdict);
    }

    fn lookup_proof(&self, key: &ProofKey) -> Option<Option<bool>> {
        let hit = lock(global_proofs()).get(key).copied();
        if hit.is_some() {
            self.0.verdict_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    fn insert_proof(&self, key: ProofKey, outcome: Option<bool>) {
        lock(global_proofs()).insert(key, outcome);
    }

    fn record_smt(&self, elapsed: Duration) {
        self.0.smt_queries.fetch_add(1, Ordering::Relaxed);
        self.0.smt_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn solver(&self) -> &SharedSolver {
        &self.0.solver
    }

    /// Terms interned in the shared SMT context (a reuse metric).
    pub fn smt_terms(&self) -> usize {
        self.0.solver.terms()
    }

    fn snapshot(&self) -> MemoSnapshot {
        MemoSnapshot {
            smt_queries: self.0.smt_queries.load(Ordering::Relaxed),
            smt_time_nanos: self.0.smt_nanos.load(Ordering::Relaxed),
            verdict_hits: self.0.verdict_hits.load(Ordering::Relaxed),
            env_hits: self.0.env_hits.load(Ordering::Relaxed),
        }
    }
}

fn add_halide_loads(e: &Expr, spec: &mut BufferSpec) {
    halide_ir::analysis::visit(e, &mut |n| match n {
        Expr::Load(l) => {
            spec.insert(l.buffer.clone(), l.ty);
        }
        Expr::BroadcastLoad(b) => {
            spec.insert(b.buffer.clone(), b.ty);
        }
        _ => {}
    });
}

fn add_uber_loads(e: &UberExpr, spec: &mut BufferSpec) {
    match e {
        UberExpr::Data(l) => {
            spec.insert(l.buffer.clone(), l.ty);
        }
        UberExpr::Bcast { value: ScalarSource::Scalar { buffer, .. }, ty } => {
            spec.insert(buffer.clone(), *ty);
        }
        _ => {}
    }
    for c in e.children() {
        add_uber_loads(c, spec);
    }
}

fn add_hvx_loads(e: &HvxExpr, spec: &mut BufferSpec) {
    match e.root() {
        Op::Vmem { buffer, elem, .. } => {
            spec.insert(buffer.clone(), *elem);
        }
        Op::Vsplat { value: hvx::ScalarOperand::Load { buffer, .. }, elem } => {
            spec.insert(buffer.clone(), *elem);
        }
        _ => {}
    }
    for a in e.args() {
        add_hvx_loads(a, spec);
    }
}

/// A joint rewrite of a (Halide, uber) query pair used to canonicalize
/// cache keys: buffer alpha-renaming, optionally with per-buffer uniform
/// offset translation.
#[derive(Default)]
struct Canon {
    /// Buffer → canonical name (`b0`, `b1`, ... in first-appearance order
    /// over the Halide expression, then the candidate).
    names: HashMap<String, String>,
    /// Buffer → (min dx, min dy) over its vector loads on both sides;
    /// subtracted so the minimum becomes 0.
    load_shift: HashMap<String, (i32, i32)>,
    /// Buffer → (min x, min dy) over its scalar reads on both sides.
    scalar_shift: HashMap<String, (i32, i32)>,
}

impl Canon {
    /// Alpha-renaming only: verdict-preserving for the whole oracle
    /// (differential + proof), since buffer names are opaque to both.
    fn alpha(h: &Expr, u: &UberExpr) -> Canon {
        let mut canon = Canon::default();
        canon.collect_names(h, u);
        canon
    }

    /// Alpha-renaming plus per-buffer offset translation. This preserves
    /// the *SMT* verdict exactly — the encoder names a load variable by
    /// `(buffer, dx + lane, dy)` and a scalar by `(buffer, x, dy)`, so a
    /// uniform per-buffer shift yields the identical term DAG, identical
    /// CNF, and the identical solver trajectory (including budget
    /// exhaustion). It does NOT preserve differential verdicts (concrete
    /// test data varies by offset), so it keys [`ProofKey`] only.
    fn proof(h: &Expr, u: &UberExpr) -> Canon {
        let mut canon = Canon::default();
        canon.collect_names(h, u);
        let mut note_load = |buffer: &str, dx: i32, dy: i32| {
            let e = canon.load_shift.entry(buffer.to_owned()).or_insert((dx, dy));
            e.0 = e.0.min(dx);
            e.1 = e.1.min(dy);
        };
        let mut note_scalar_shifts: Vec<(String, i32, i32)> = Vec::new();
        halide_ir::analysis::visit(h, &mut |n| match n {
            Expr::Load(l) => note_load(&l.buffer, l.dx, l.dy),
            Expr::BroadcastLoad(b) => note_scalar_shifts.push((b.buffer.clone(), b.x, b.dy)),
            _ => {}
        });
        visit_uber(u, &mut |n| match n {
            UberExpr::Data(l) => note_load(&l.buffer, l.dx, l.dy),
            UberExpr::Bcast { value: ScalarSource::Scalar { buffer, x, dy }, .. } => {
                note_scalar_shifts.push((buffer.clone(), *x, *dy));
            }
            _ => {}
        });
        for (buffer, x, dy) in note_scalar_shifts {
            let e = canon.scalar_shift.entry(buffer).or_insert((x, dy));
            e.0 = e.0.min(x);
            e.1 = e.1.min(dy);
        }
        canon
    }

    fn collect_names(&mut self, h: &Expr, u: &UberExpr) {
        let mut order: Vec<String> = Vec::new();
        let mut note = |name: &str| {
            if !order.iter().any(|n| n == name) {
                order.push(name.to_owned());
            }
        };
        halide_ir::analysis::visit(h, &mut |n| match n {
            Expr::Load(l) => note(&l.buffer),
            Expr::BroadcastLoad(b) => note(&b.buffer),
            _ => {}
        });
        visit_uber(u, &mut |n| match n {
            UberExpr::Data(l) => note(&l.buffer),
            UberExpr::Bcast { value: ScalarSource::Scalar { buffer, .. }, .. } => note(buffer),
            _ => {}
        });
        self.names =
            order.into_iter().enumerate().map(|(i, n)| (n, format!("b{i}"))).collect();
    }

    fn name(&self, n: &str) -> String {
        self.names.get(n).cloned().unwrap_or_else(|| n.to_owned())
    }

    fn load(&self, l: &halide_ir::Load) -> halide_ir::Load {
        let (sx, sy) = self.load_shift.get(&l.buffer).copied().unwrap_or((0, 0));
        halide_ir::Load {
            buffer: self.name(&l.buffer),
            dx: l.dx - sx,
            dy: l.dy - sy,
            ty: l.ty,
        }
    }

    fn scalar(&self, buffer: &str, x: i32, dy: i32) -> ScalarSource {
        let (sx, sy) = self.scalar_shift.get(buffer).copied().unwrap_or((0, 0));
        ScalarSource::Scalar { buffer: self.name(buffer), x: x - sx, dy: dy - sy }
    }

    fn halide(&self, e: &Expr) -> Expr {
        use halide_ir::{Binary, Cast, Shift};
        match e {
            Expr::Load(l) => Expr::Load(self.load(l)),
            Expr::Broadcast(b) => Expr::Broadcast(b.clone()),
            Expr::BroadcastLoad(b) => {
                let ScalarSource::Scalar { buffer, x, dy } = self.scalar(&b.buffer, b.x, b.dy)
                else {
                    unreachable!("scalar() always returns Scalar")
                };
                Expr::BroadcastLoad(halide_ir::BroadcastLoad { buffer, x, dy, ty: b.ty })
            }
            Expr::Cast(c) => Expr::Cast(Cast {
                to: c.to,
                saturating: c.saturating,
                arg: Box::new(self.halide(&c.arg)),
            }),
            Expr::Binary(b) => Expr::Binary(Binary {
                op: b.op,
                lhs: Box::new(self.halide(&b.lhs)),
                rhs: Box::new(self.halide(&b.rhs)),
            }),
            Expr::Shift(s) => Expr::Shift(Shift {
                dir: s.dir,
                amount: s.amount,
                arg: Box::new(self.halide(&s.arg)),
            }),
        }
    }

    fn uber(&self, u: &UberExpr) -> UberExpr {
        use uber_ir::{VsMpyAdd, VvMpyAdd};
        let r = |c: &UberExpr| Box::new(self.uber(c));
        match u {
            UberExpr::Data(l) => UberExpr::Data(self.load(l)),
            UberExpr::Bcast { value: ScalarSource::Scalar { buffer, x, dy }, ty } => {
                UberExpr::Bcast { value: self.scalar(buffer, *x, *dy), ty: *ty }
            }
            UberExpr::Bcast { value, ty } => UberExpr::Bcast { value: value.clone(), ty: *ty },
            UberExpr::VsMpyAdd(v) => UberExpr::VsMpyAdd(VsMpyAdd {
                inputs: v.inputs.iter().map(|i| self.uber(i)).collect(),
                kernel: v.kernel.clone(),
                saturating: v.saturating,
                out: v.out,
            }),
            UberExpr::VvMpyAdd(v) => UberExpr::VvMpyAdd(VvMpyAdd {
                pairs: v.pairs.iter().map(|(a, b)| (self.uber(a), self.uber(b))).collect(),
                saturating: v.saturating,
                out: v.out,
            }),
            UberExpr::AbsDiff(a, b) => UberExpr::AbsDiff(r(a), r(b)),
            UberExpr::Min(a, b) => UberExpr::Min(r(a), r(b)),
            UberExpr::Max(a, b) => UberExpr::Max(r(a), r(b)),
            UberExpr::Average { a, b, round } => {
                UberExpr::Average { a: r(a), b: r(b), round: *round }
            }
            UberExpr::Narrow { arg, shift, round, saturating, out } => UberExpr::Narrow {
                arg: r(arg),
                shift: *shift,
                round: *round,
                saturating: *saturating,
                out: *out,
            },
            UberExpr::Widen { arg, out } => UberExpr::Widen { arg: r(arg), out: *out },
            UberExpr::Shl { arg, amount } => UberExpr::Shl { arg: r(arg), amount: *amount },
        }
    }
}

fn visit_uber(u: &UberExpr, f: &mut impl FnMut(&UberExpr)) {
    f(u);
    for c in u.children() {
        visit_uber(c, f);
    }
}

/// Rearrange natural-order lanes into deinterleaved pair order (even lanes
/// first, then odd) — the layout a widening HVX instruction leaves a pair
/// in, flattened to natural register order `lo ++ hi`.
pub fn deinterleaved_order(v: &Vector) -> Vector {
    let n = v.lanes();
    Vector::from_fn(v.ty(), n, |i| {
        if i < n / 2 {
            v.get(2 * i)
        } else {
            v.get(2 * (i - n / 2) + 1)
        }
    })
}

impl Verifier {
    /// A verifier with small widths for fast unit tests.
    pub fn fast() -> Verifier {
        Verifier {
            lanes: 8,
            vec_bytes: 8,
            alt_lanes: 4,
            random_envs: 6,
            use_smt: true,
            smt_lanes: 2,
            smt_conflict_budget: 50_000,
            smt_lowering: false,
            ..Verifier::default()
        }
    }

    /// Current reading of the monotone query counters (SMT queries, SMT
    /// time, cache hits). Counted with memoization on or off.
    pub fn memo_snapshot(&self) -> MemoSnapshot {
        self.memo.snapshot()
    }

    fn oracle_config(&self) -> OracleConfig {
        OracleConfig {
            lanes: self.lanes,
            vec_bytes: self.vec_bytes,
            alt_lanes: self.alt_lanes,
            random_envs: self.random_envs,
            use_smt: self.use_smt,
            smt_lanes: self.smt_lanes,
            smt_conflict_budget: self.smt_conflict_budget,
            smt_lowering: self.smt_lowering,
        }
    }

    fn envs_for(&self, spec: &BufferSpec, lanes: usize) -> Arc<Vec<Env>> {
        let width = lanes + 2 * MARGIN_X as usize;
        let height = 2 * MARGIN_Y as usize + 1;
        if !self.memoize {
            return Arc::new(test_envs(spec, width, height, self.random_envs));
        }
        let key = (spec.clone(), lanes, self.random_envs);
        if let Some(envs) = lock(&self.memo.0.envs).get(&key) {
            self.memo.0.env_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(envs);
        }
        let envs = Arc::new(test_envs(spec, width, height, self.random_envs));
        lock(&self.memo.0.envs).entry(key).or_insert_with(|| Arc::clone(&envs));
        envs
    }

    /// Differential + SMT equivalence of a Halide expression and an
    /// uber-expression (the lifting oracle).
    pub fn equiv_halide_uber(&self, h: &Expr, u: &UberExpr) -> bool {
        if !self.memoize {
            return self.equiv_halide_uber_uncached(h, u);
        }
        let canon = Canon::alpha(h, u);
        let key =
            VerdictKey::HalideUber { cfg: self.oracle_config(), h: canon.halide(h), u: canon.uber(u) };
        if let Some(v) = self.memo.lookup(&key) {
            return v;
        }
        let v = self.equiv_halide_uber_uncached(h, u);
        self.memo.insert(key, v);
        v
    }

    fn equiv_halide_uber_uncached(&self, h: &Expr, u: &UberExpr) -> bool {
        if h.ty() != u.ty() {
            return false;
        }
        let mut spec = BufferSpec::new();
        add_halide_loads(h, &mut spec);
        add_uber_loads(u, &mut spec);
        for &lanes in &[self.lanes, self.alt_lanes] {
            let envs = self.envs_for(&spec, lanes);
            // Lane-0-first pruning pass.
            for env in envs.iter() {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes: 1 };
                let (Ok(a), Ok(b)) = (halide_ir::eval(h, &ctx), eval_uber(u, &ctx)) else {
                    return false;
                };
                if a.get(0) != b.get(0) {
                    return false;
                }
            }
            for env in envs.iter() {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes };
                let (Ok(a), Ok(b)) = (halide_ir::eval(h, &ctx), eval_uber(u, &ctx)) else {
                    return false;
                };
                if a != b {
                    return false;
                }
            }
        }
        if self.use_smt {
            return self.smt_equiv(h, u);
        }
        true
    }

    fn smt_equiv(&self, h: &Expr, u: &UberExpr) -> bool {
        let mut sp = trace::span("verify.smt_equiv", "smt");
        // Fast path: wrap-free linear combinations are decided exactly by
        // coefficient comparison (most multiply-add lifting queries).
        if let Some(eq) = crate::linear::decide_linear(h, u) {
            sp.arg("path", "linear");
            return eq;
        }
        // The proof cache keys on the translation-canonicalized pair: the
        // encoder names variables by per-buffer relative offsets, so two
        // queries that differ only in a uniform per-buffer shift produce
        // the same term DAG and hence the same proof outcome (including
        // budget exhaustion). The stencil workloads hit this constantly —
        // every row of a separable filter is a dy-translation of the rest.
        let key = self.memoize.then(|| {
            let canon = Canon::proof(h, u);
            ProofKey {
                smt_lanes: self.smt_lanes,
                budget: self.smt_conflict_budget,
                h: canon.halide(h),
                u: canon.uber(u),
            }
        });
        if sp.is_active() {
            if let Some(k) = key.as_ref() {
                sp.arg("proof_key", proof_fingerprint(k));
            }
        }
        if let Some(hit) = key.as_ref().and_then(|k| self.memo.lookup_proof(k)) {
            sp.arg("path", "proof-cache");
            sp.arg("proof_cache", "hit");
            return hit.unwrap_or(true);
        }
        let t0 = Instant::now();
        let build = |ctx: &mut Context| {
            let mut sp = trace::span("verify.encode", "verify");
            let mut any_ne = ctx.ff();
            for lane in 0..self.smt_lanes {
                let th = encode_halide_lane(ctx, h, lane);
                let tu = encode_uber_lane(ctx, u, lane);
                let ne = ctx.ne(th, tu);
                any_ne = ctx.or(any_ne, ne);
            }
            sp.arg("lanes", self.smt_lanes);
            any_ne
        };
        let result = if self.memoize {
            self.memo.solver().prove_unsat(build, self.smt_conflict_budget)
        } else {
            // Unmemoized: a throwaway context per query, as before.
            SharedSolver::new().prove_unsat(build, self.smt_conflict_budget)
        };
        self.memo.record_smt(t0.elapsed());
        if sp.is_active() {
            sp.arg("path", "solve");
            sp.arg("proof_cache", "miss");
            sp.arg(
                "outcome",
                match result {
                    Some(true) => "unsat",
                    Some(false) => "sat",
                    None => "unknown",
                },
            );
        }
        if let Some(key) = key {
            self.memo.insert_proof(key, result);
        }
        // Proof effort exhausted: fall back on the differential evidence
        // that already screened this candidate (documented in DESIGN.md's
        // verification-strategy table).
        result.unwrap_or(true)
    }

    /// Differential equivalence of an uber-expression and a lowered HVX
    /// expression (the sketch/swizzle oracle). `deinterleaved` states the
    /// layout the HVX value is expected in.
    pub fn equiv_uber_hvx(&self, u: &UberExpr, h: &HvxExpr, deinterleaved: bool) -> bool {
        if !self.memoize {
            return self.equiv_uber_hvx_uncached(h, u, deinterleaved);
        }
        let key = VerdictKey::UberHvx {
            cfg: self.oracle_config(),
            deinterleaved,
            u: u.clone(),
            h: h.clone(),
        };
        if let Some(v) = self.memo.lookup(&key) {
            return v;
        }
        let v = self.equiv_uber_hvx_uncached(h, u, deinterleaved);
        self.memo.insert(key, v);
        v
    }

    fn equiv_uber_hvx_uncached(&self, h: &HvxExpr, u: &UberExpr, deinterleaved: bool) -> bool {
        let out_ty = u.ty();
        let mut spec = BufferSpec::new();
        add_uber_loads(u, &mut spec);
        add_hvx_loads(h, &mut spec);
        // Lowered code is width-specific (sliding-window operands embed the
        // vector length), so only the target width is meaningful here.
        {
            let lanes = self.lanes;
            let envs = self.envs_for(&spec, lanes);
            for env in envs.iter() {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes };
                let Ok(expected) = eval_uber(u, &ctx) else { return false };
                let expected =
                    if deinterleaved { deinterleaved_order(&expected) } else { expected };
                let hctx = hvx::ExecCtx {
                    env,
                    x0: MARGIN_X,
                    y0: MARGIN_Y,
                    lanes,
                    vec_bytes: self.vec_bytes,
                };
                let Ok(got) = h.eval_ctx(&hctx) else { return false };
                if got.len() != expected.lanes() * out_ty.bytes() {
                    return false;
                }
                if got.typed_lanes(out_ty) != expected {
                    return false;
                }
            }
        }
        if self.smt_lowering {
            let t0 = Instant::now();
            let fresh;
            let solver = if self.memoize {
                self.memo.solver()
            } else {
                fresh = SharedSolver::new();
                &fresh
            };
            let proved = crate::symexec::smt_equiv_uber_hvx(
                u,
                h,
                self.lanes,
                self.vec_bytes,
                deinterleaved,
                self.smt_conflict_budget,
                solver,
            );
            self.memo.record_smt(t0.elapsed());
            if let Some(proved) = proved {
                return proved;
            }
            // Unsupported op or budget exhausted: the differential
            // evidence stands.
        }
        true
    }

    /// End-to-end differential check: Halide expression against the final
    /// lowered HVX expression in natural order.
    pub fn equiv_halide_hvx(&self, e: &Expr, h: &HvxExpr) -> bool {
        if !self.memoize {
            return self.equiv_halide_hvx_uncached(e, h);
        }
        let key =
            VerdictKey::HalideHvx { cfg: self.oracle_config(), e: e.clone(), h: h.clone() };
        if let Some(v) = self.memo.lookup(&key) {
            return v;
        }
        let v = self.equiv_halide_hvx_uncached(e, h);
        self.memo.insert(key, v);
        v
    }

    fn equiv_halide_hvx_uncached(&self, e: &Expr, h: &HvxExpr) -> bool {
        let out_ty = e.ty();
        let mut spec = BufferSpec::new();
        add_halide_loads(e, &mut spec);
        add_hvx_loads(h, &mut spec);
        {
            let lanes = self.lanes;
            let envs = self.envs_for(&spec, lanes);
            for env in envs.iter() {
                let ctx = EvalCtx { env, x0: MARGIN_X, y0: MARGIN_Y, lanes };
                let Ok(expected) = halide_ir::eval(e, &ctx) else { return false };
                let hctx = hvx::ExecCtx {
                    env,
                    x0: MARGIN_X,
                    y0: MARGIN_Y,
                    lanes,
                    vec_bytes: self.vec_bytes,
                };
                let Ok(got) = h.eval_ctx(&hctx) else { return false };
                if got.len() != expected.lanes() * out_ty.bytes()
                    || got.typed_lanes(out_ty) != expected
                {
                    return false;
                }
            }
        }
        true
    }

    /// Prove a lane-invariant property of an uber-expression by interval
    /// analysis: used for the "semantic reasoning" candidates (§7.1.2).
    pub fn proves_non_negative(&self, u: &UberExpr) -> bool {
        crate::range::uber_range(u).is_non_negative()
    }

    /// Whether the value range of `u` provably fits `ty`.
    pub fn proves_fits(&self, u: &UberExpr, ty: ElemType) -> bool {
        crate::range::uber_range(u).fits(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use halide_ir::Load;

    fn v() -> Verifier {
        Verifier::fast()
    }

    #[test]
    fn accepts_correct_lift() {
        let h = hb::add(
            hb::mul(hb::widen(hb::load("in", ElemType::U8, 0, 0)), hb::bcast(2, ElemType::U16)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[2, 1], ElemType::U16);
        assert!(v().equiv_halide_uber(&h, &u));
    }

    #[test]
    fn rejects_wrong_lift() {
        let h = hb::add(
            hb::widen(hb::load("in", ElemType::U8, 0, 0)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 2], ElemType::U16);
        assert!(!v().equiv_halide_uber(&h, &u));
    }

    #[test]
    fn rejects_type_mismatch() {
        let h = hb::load("in", ElemType::U8, 0, 0);
        let u = UberExpr::Data(Load { buffer: "in".into(), dx: 0, dy: 0, ty: ElemType::U16 });
        assert!(!v().equiv_halide_uber(&h, &u));
    }

    #[test]
    fn hvx_vtmpy_implements_conv_deinterleaved() {
        let u = UberExpr::conv("in", ElemType::U8, -1, 0, &[1, 2, 1], ElemType::U16);
        let lanes = 8; // verifier's fast width
        let hv = HvxExpr::op(
            Op::Vtmpy { elem: ElemType::U8, w0: 1, w1: 2 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, -1, 0),
                HvxExpr::vmem("in", ElemType::U8, -1 + lanes, 0),
            ],
        );
        // vtmpy leaves the pair deinterleaved: equivalence holds only under
        // the deinterleaved layout, and the verifier distinguishes the two.
        let mut ver = v();
        ver.alt_lanes = 8; // vtmpy's second operand offset bakes in the width
        assert!(ver.equiv_uber_hvx(&u, &hv, true));
        assert!(!ver.equiv_uber_hvx(&u, &hv, false));
    }

    #[test]
    fn deinterleaved_order_roundtrip() {
        let nat = Vector::from_fn(ElemType::U16, 8, |i| i as i64);
        let de = deinterleaved_order(&nat);
        assert_eq!(de.as_slice(), &[0, 2, 4, 6, 1, 3, 5, 7]);
    }

    #[test]
    fn range_proofs() {
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 2, 1], ElemType::U16);
        assert!(v().proves_non_negative(&u));
        assert!(v().proves_fits(&u, ElemType::U16));
        assert!(!v().proves_fits(&u, ElemType::U8));
    }

    #[test]
    fn repeated_queries_hit_the_verdict_cache() {
        let ver = v();
        let h = hb::add(
            hb::mul(hb::widen(hb::load("in", ElemType::U8, 0, 0)), hb::bcast(2, ElemType::U16)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[2, 1], ElemType::U16);
        assert!(ver.equiv_halide_uber(&h, &u));
        let before = ver.memo_snapshot();
        assert!(ver.equiv_halide_uber(&h, &u));
        let delta = ver.memo_snapshot().delta_since(&before);
        assert_eq!(delta.verdict_hits, 1);
        assert_eq!(delta.smt_queries, 0, "cached verdicts issue no proofs");
    }

    #[test]
    fn buffer_renaming_shares_one_cache_entry() {
        let ver = v();
        let query = |buf: &str| {
            let h = hb::add(
                hb::widen(hb::load(buf, ElemType::U8, 0, 0)),
                hb::widen(hb::load(buf, ElemType::U8, 1, 0)),
            );
            let u = UberExpr::conv(buf, ElemType::U8, 0, 0, &[1, 1], ElemType::U16);
            (h, u)
        };
        let (h1, u1) = query("alpha");
        let (h2, u2) = query("beta");
        assert!(ver.equiv_halide_uber(&h1, &u1));
        let before = ver.memo_snapshot();
        assert!(ver.equiv_halide_uber(&h2, &u2));
        let delta = ver.memo_snapshot().delta_since(&before);
        assert_eq!(delta.verdict_hits, 1, "alpha-renamed pair must hit");
    }

    #[test]
    fn translated_queries_share_one_proof() {
        // Two queries whose loads differ only by a uniform per-buffer
        // offset shift: distinct verdict-cache entries (the differential
        // data differs), but one shared SMT proof. absd is outside the
        // linear fast path, so each verdict would otherwise prove afresh.
        let ver = v();
        let query = |(ax, ay): (i32, i32), (bx, by): (i32, i32)| {
            let h = hb::absd(
                hb::load("a", ElemType::U8, ax, ay),
                hb::load("b", ElemType::U8, bx, by),
            );
            let u = UberExpr::AbsDiff(
                Box::new(UberExpr::Data(Load {
                    buffer: "a".into(),
                    dx: ax,
                    dy: ay,
                    ty: ElemType::U8,
                })),
                Box::new(UberExpr::Data(Load {
                    buffer: "b".into(),
                    dx: bx,
                    dy: by,
                    ty: ElemType::U8,
                })),
            );
            (h, u)
        };
        let (h1, u1) = query((2, 0), (5, 0));
        assert!(ver.equiv_halide_uber(&h1, &u1));
        let before = ver.memo_snapshot();
        // Buffers shift independently: a by (+2, +3), b by (-4, +7).
        let (h2, u2) = query((4, 3), (1, 7));
        assert!(ver.equiv_halide_uber(&h2, &u2));
        let delta = ver.memo_snapshot().delta_since(&before);
        assert_eq!(delta.smt_queries, 0, "translated query must reuse the proof");
        assert_eq!(delta.verdict_hits, 1, "the proof-cache hit is counted");
    }

    #[test]
    fn clones_share_the_memo_but_not_stale_configs() {
        let ver = v();
        let h = hb::absd(hb::load("a", ElemType::U8, 0, 0), hb::load("b", ElemType::U8, 0, 0));
        let u = UberExpr::AbsDiff(
            Box::new(UberExpr::Data(Load {
                buffer: "a".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })),
            Box::new(UberExpr::Data(Load {
                buffer: "b".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })),
        );
        assert!(ver.equiv_halide_uber(&h, &u));
        // A re-pinned clone (the lowering pattern) shares the memo...
        let clone = Verifier { lanes: ver.lanes, vec_bytes: ver.vec_bytes, ..ver.clone() };
        let before = clone.memo_snapshot();
        assert!(clone.equiv_halide_uber(&h, &u));
        assert_eq!(clone.memo_snapshot().delta_since(&before).verdict_hits, 1);
        // ...a different differential geometry re-runs the differential
        // under its own verdict key, sharing only the SMT proof (which
        // depends on smt_lanes and budget, not on the test geometry)...
        let wider = Verifier { lanes: 16, vec_bytes: 16, ..ver.clone() };
        let before = wider.memo_snapshot();
        assert!(wider.equiv_halide_uber(&h, &u));
        let delta = wider.memo_snapshot().delta_since(&before);
        assert_eq!(delta.smt_queries, 0, "proof is geometry-independent");
        assert_eq!(delta.verdict_hits, 1, "the hit is the proof, not the verdict");
        // ...and a different proof configuration misses both cache layers.
        let deeper = Verifier { smt_lanes: ver.smt_lanes + 1, ..ver.clone() };
        let before = deeper.memo_snapshot();
        assert!(deeper.equiv_halide_uber(&h, &u));
        let delta = deeper.memo_snapshot().delta_since(&before);
        assert_eq!(delta.verdict_hits, 0, "no stale hits across configs");
        assert_eq!(delta.smt_queries, 1);
    }

    #[test]
    fn memoized_and_unmemoized_verdicts_agree() {
        let memo = v();
        let plain = Verifier { memoize: false, ..v() };
        let h_ok = hb::add(
            hb::widen(hb::load("in", ElemType::U8, 0, 0)),
            hb::widen(hb::load("in", ElemType::U8, 1, 0)),
        );
        let u_ok = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 1], ElemType::U16);
        let u_bad = UberExpr::conv("in", ElemType::U8, 0, 0, &[1, 2], ElemType::U16);
        for _ in 0..2 {
            assert_eq!(
                memo.equiv_halide_uber(&h_ok, &u_ok),
                plain.equiv_halide_uber(&h_ok, &u_ok)
            );
            assert_eq!(
                memo.equiv_halide_uber(&h_ok, &u_bad),
                plain.equiv_halide_uber(&h_ok, &u_bad)
            );
        }
        assert!(plain.memo_snapshot().smt_queries >= memo.memo_snapshot().smt_queries);
    }

    #[test]
    fn env_cache_serves_repeat_signatures() {
        let ver = v();
        let mut spec = BufferSpec::new();
        spec.insert("in".to_owned(), ElemType::U8);
        let a = ver.envs_for(&spec, 8);
        let before = ver.memo_snapshot();
        let b = ver.envs_for(&spec, 8);
        assert_eq!(ver.memo_snapshot().delta_since(&before).env_hits, 1);
        assert!(Arc::ptr_eq(&a, &b));
        // A different width is a different family.
        let c = ver.envs_for(&spec, 4);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
