//! A process-wide synthesis thread budget.
//!
//! Parallelism exists at two levels: the driver fans compilation *jobs*
//! over a worker pool, and lifting fans candidate *screening* over helper
//! threads within one job. Both draw from one budget so their sum never
//! exceeds the configured cap — the driver reserves one permit per worker
//! it spawns, and lifting helpers only claim whatever is left (for
//! example the idle workers of a one-job batch).
//!
//! The caller's own thread is never counted: a reservation covers *extra*
//! threads only. With a budget of N and one busy caller, lifting may
//! therefore spawn at most N minus the permits already held.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Sentinel for "never configured": fall back to the machine's parallelism.
const UNSET: usize = usize::MAX;

/// A counting permit pool. The process-wide instance is [`global`]; tests
/// construct private instances to stay isolated.
#[derive(Debug)]
pub struct Budget {
    total: AtomicUsize,
    in_use: AtomicUsize,
}

/// RAII permits for extra threads; dropping returns them to the budget.
#[derive(Debug)]
pub struct Reservation<'a> {
    pool: &'a Budget,
    n: usize,
}

impl Budget {
    /// An unconfigured budget (defaults to the machine's parallelism).
    pub const fn new() -> Budget {
        Budget { total: AtomicUsize::new(UNSET), in_use: AtomicUsize::new(0) }
    }

    /// Set the total thread budget, clamped to at least 1.
    pub fn set_total(&self, n: usize) {
        self.total.store(n.max(1), Ordering::SeqCst);
    }

    /// The total budget in effect: the configured value, or the machine's
    /// available parallelism when never configured.
    pub fn total(&self) -> usize {
        match self.total.load(Ordering::SeqCst) {
            UNSET => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        }
    }

    /// Claim up to `max` permits from whatever is currently unclaimed.
    /// Never blocks; returns an empty reservation when the budget is spent.
    pub fn reserve_up_to(&self, max: usize) -> Reservation<'_> {
        let total = self.total();
        loop {
            let used = self.in_use.load(Ordering::SeqCst);
            let take = total.saturating_sub(used).min(max);
            if take == 0 {
                return Reservation { pool: self, n: 0 };
            }
            if self
                .in_use
                .compare_exchange(used, used + take, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Reservation { pool: self, n: take };
            }
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::new()
    }
}

impl Reservation<'_> {
    /// Number of permits held.
    pub fn count(&self) -> usize {
        self.n
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if self.n > 0 {
            self.pool.in_use.fetch_sub(self.n, Ordering::SeqCst);
        }
    }
}

static GLOBAL: Budget = Budget::new();

/// The process-wide budget shared by the driver and the lifting helpers.
pub fn global() -> &'static Budget {
    &GLOBAL
}

/// Set the process-wide budget (driver `--jobs`, perf `--jobs`).
pub fn set_thread_budget(n: usize) {
    GLOBAL.set_total(n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_shared_and_returned() {
        let pool = Budget::new();
        pool.set_total(3);
        assert_eq!(pool.total(), 3);
        let a = pool.reserve_up_to(2);
        assert_eq!(a.count(), 2);
        let b = pool.reserve_up_to(5);
        assert_eq!(b.count(), 1, "only the remainder is available");
        assert_eq!(pool.reserve_up_to(1).count(), 0, "budget exhausted");
        drop(a);
        let d = pool.reserve_up_to(5);
        assert_eq!(d.count(), 2, "dropped permits return");
        drop(b);
        drop(d);
        assert_eq!(pool.reserve_up_to(9).count(), 3);
    }

    #[test]
    fn zero_clamps_to_one() {
        let pool = Budget::new();
        pool.set_total(0);
        assert_eq!(pool.total(), 1);
    }

    #[test]
    fn unconfigured_uses_machine_parallelism() {
        let pool = Budget::new();
        assert!(pool.total() >= 1);
    }
}
