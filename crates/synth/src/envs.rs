//! Test-environment generation for differential verification.
//!
//! Counterexample-guided search needs input environments that actually
//! distinguish wrong candidates. We combine adversarial fills (extremes,
//! near-saturation, sign boundaries, alternation) with seeded random fills.

use std::collections::BTreeMap;

use halide_ir::{Buffer2D, Env};
use lanes::ElemType;
use lanes::rng::Rng;

/// The buffers an expression reads: name → element type.
pub type BufferSpec = BTreeMap<String, ElemType>;

/// Deterministically generate a family of test environments for the given
/// buffers. `width`/`height` must cover the tile plus any stencil halo.
///
/// The first environments are adversarial (constant extremes, alternating
/// patterns, saturation edges); the rest are seeded-random.
pub fn test_envs(spec: &BufferSpec, width: usize, height: usize, random: usize) -> Vec<Env> {
    let mut envs = Vec::new();
    type Fill = Box<dyn Fn(ElemType, usize, usize) -> i64>;
    let adversarial: Vec<Fill> = vec![
        Box::new(|_t, _x, _y| 0),
        Box::new(|t: ElemType, _x, _y| t.max_value()),
        Box::new(|t: ElemType, _x, _y| t.min_value()),
        Box::new(|t: ElemType, x, _y| if x % 2 == 0 { t.max_value() } else { 0 }),
        Box::new(|t: ElemType, x, y| if (x + y) % 2 == 0 { t.max_value() } else { t.min_value() }),
        Box::new(|t: ElemType, x, _y| t.wrap(t.max_value() - x as i64)),
        Box::new(|t: ElemType, x, y| t.wrap((x * 7 + y * 13) as i64)),
        // One inside the extremes: MIN+1/MAX-1 catch off-by-one clamps
        // that the exact extremes mask.
        Box::new(|t: ElemType, x, _y| {
            if x % 2 == 0 {
                t.max_value() - 1
            } else {
                t.min_value() + 1
            }
        }),
        // Rounding cut-points: ±1 around powers of two, where
        // round-then-shift and saturation decisions flip.
        Box::new(|t: ElemType, x, y| {
            let k = 1 + ((x + y * 3) as u32 % (t.bits() - 1));
            t.wrap((1i64 << k) + (x % 3) as i64 - 1)
        }),
    ];
    for fill in &adversarial {
        let env: Env = spec
            .iter()
            .map(|(name, &ty)| Buffer2D::from_fn(name, ty, width, height, |x, y| fill(ty, x, y)))
            .collect();
        envs.push(env);
    }
    for seed in 0..random as u64 {
        let env: Env = spec
            .iter()
            .enumerate()
            .map(|(bi, (name, &ty))| {
                let mut rng = Rng::seed_from_u64(seed * 1031 + bi as u64);
                Buffer2D::from_fn(name, ty, width, height, |_x, _y| {
                    rng.gen_range(ty.min_value()..=ty.max_value())
                })
            })
            .collect();
        envs.push(env);
    }
    envs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> BufferSpec {
        [("a".to_owned(), ElemType::U8), ("b".to_owned(), ElemType::I16)].into_iter().collect()
    }

    #[test]
    fn generates_requested_count() {
        let envs = test_envs(&spec(), 8, 2, 5);
        assert_eq!(envs.len(), 9 + 5);
        for env in &envs {
            assert_eq!(env.get("a").unwrap().elem(), ElemType::U8);
            assert_eq!(env.get("b").unwrap().elem(), ElemType::I16);
            assert_eq!(env.get("a").unwrap().width(), 8);
        }
    }

    #[test]
    fn deterministic() {
        let a = test_envs(&spec(), 4, 1, 3);
        let b = test_envs(&spec(), 4, 1, 3);
        for (ea, eb) in a.iter().zip(&b) {
            for name in ["a", "b"] {
                let (ba, bb) = (ea.get(name).unwrap(), eb.get(name).unwrap());
                for x in 0..4 {
                    assert_eq!(ba.get(x, 0), bb.get(x, 0));
                }
            }
        }
    }

    #[test]
    fn adversarial_extremes_present() {
        let envs = test_envs(&spec(), 4, 1, 0);
        assert_eq!(envs[0].get("a").unwrap().get(0, 0), 0);
        assert_eq!(envs[1].get("a").unwrap().get(0, 0), 255);
        assert_eq!(envs[2].get("b").unwrap().get(0, 0), -32768);
    }

    #[test]
    fn near_boundary_fills_present() {
        let envs = test_envs(&spec(), 4, 1, 0);
        // Fill 7: one inside the extremes.
        assert_eq!(envs[7].get("a").unwrap().get(0, 0), 254);
        assert_eq!(envs[7].get("b").unwrap().get(1, 0), -32767);
        // Fill 8: within one of a power of two.
        let v = envs[8].get("b").unwrap().get(0, 0);
        assert!((1..=3).contains(&v), "got {v}");
    }
}
