//! Cooperative cancellation flags for in-flight synthesis.
//!
//! A deadline bounds how long a search may run; a cancellation flag lets a
//! caller stop it *early* — a compilation server whose client disconnected
//! has no reason to finish the request. The flag is checked at exactly the
//! sites that already check the cooperative deadline (candidate loops in
//! lifting, lowering and the swizzle search), so cancellation inherits the
//! deadline plumbing's latency bounds.
//!
//! Flags are `&'static AtomicBool` rather than `Arc<AtomicBool>` so
//! [`crate::LoweringOptions`] stays `Copy` (the options value is copied
//! into every search stage and helper thread). Statics cannot be freed, so
//! the pool recycles them: [`acquire`] pops a cleared flag from the
//! free list (leaking a fresh one only when the list is empty) and
//! [`release`] returns it. The number of live flags is therefore bounded
//! by the caller's peak concurrency, not the request count.
//!
//! Safety contract for [`release`]: the caller must guarantee no thread
//! still reads the flag — the driver releases only after every worker of
//! the batch has joined.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// A cancellation flag: set it to `true` to ask in-flight synthesis to
/// stop at its next cooperative check point.
pub type CancelFlag = &'static AtomicBool;

static FREE: Mutex<Vec<&'static AtomicBool>> = Mutex::new(Vec::new());

/// Take a cleared flag from the pool (allocating one if none is free).
pub fn acquire() -> CancelFlag {
    let recycled = FREE.lock().unwrap_or_else(std::sync::PoisonError::into_inner).pop();
    match recycled {
        Some(flag) => {
            flag.store(false, Ordering::SeqCst);
            flag
        }
        None => Box::leak(Box::new(AtomicBool::new(false))),
    }
}

/// Return a flag to the pool once no thread can read it any more.
pub fn release(flag: CancelFlag) {
    flag.store(false, Ordering::SeqCst);
    FREE.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(flag);
}

/// Whether an optional flag is raised.
#[inline]
pub fn cancelled(flag: Option<CancelFlag>) -> bool {
    flag.is_some_and(|f| f.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles_and_clears() {
        let a = acquire();
        assert!(!a.load(Ordering::SeqCst));
        a.store(true, Ordering::SeqCst);
        release(a);
        let b = acquire();
        // Whichever flag came back (the pool is shared across tests), it
        // must be cleared.
        assert!(!b.load(Ordering::SeqCst));
        release(b);
    }

    #[test]
    fn cancelled_reads_the_flag() {
        assert!(!cancelled(None));
        let f = acquire();
        assert!(!cancelled(Some(f)));
        f.store(true, Ordering::SeqCst);
        assert!(cancelled(Some(f)));
        release(f);
    }
}
