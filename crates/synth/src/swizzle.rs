//! Swizzle synthesis: concretizing abstract data movement (§5).
//!
//! Swizzle-free sketches leave three kinds of holes: *where a load's window
//! comes from* (`??load`), *how a pair's layout is fixed up* between the
//! deinterleaved order widening instructions produce and the natural order
//! stores need (`??swizzle`), and *how register halves are assembled*.
//! This module fills them with concrete `vmem` / `valign` / `vshuffvdd` /
//! `vdealvdd` / `vcombine` instructions, counting each materialization as
//! one swizzling query (Table 1).

use hvx::{HvxExpr, Op};
use lanes::ElemType;

use crate::lower::Layout;
use crate::stats::SynthStats;

/// Materialize a `??load` hole: a window of `lanes` elements at `(dx, dy)`.
///
/// With `aligned_loads` set, vector memory operations may only target
/// register-aligned addresses (as on real HVX fast paths), so an unaligned
/// window is synthesized as two aligned loads joined by a `valign` — the
/// shape of the synthesized data movement in the paper's Figure 8.
pub fn load_window(
    buffer: &str,
    elem: ElemType,
    dx: i32,
    dy: i32,
    lanes: usize,
    aligned_loads: bool,
    stats: &mut SynthStats,
) -> HvxExpr {
    stats.swizzling_queries += 1;
    if !aligned_loads || dx.rem_euclid(lanes as i32) == 0 {
        return HvxExpr::vmem(buffer, elem, dx, dy);
    }
    let lo_base = dx.div_euclid(lanes as i32) * lanes as i32;
    let off_lanes = (dx - lo_base) as u32;
    stats.swizzling_queries += 1;
    HvxExpr::op(
        Op::Valign { bytes: off_lanes * elem.bytes() as u32 },
        vec![
            HvxExpr::vmem(buffer, elem, lo_base + lanes as i32, dy),
            HvxExpr::vmem(buffer, elem, lo_base, dy),
        ],
    )
}

/// Convert a pair value between layouts, inserting the permute that undoes
/// (or introduces) the implicit deinterleaving of widening instructions.
pub fn to_layout(
    e: HvxExpr,
    from: Layout,
    to: Layout,
    wide_elem: ElemType,
    stats: &mut SynthStats,
) -> HvxExpr {
    if from == to {
        return e;
    }
    stats.swizzling_queries += 1;
    match to {
        Layout::Natural => HvxExpr::op(Op::VshuffPair { elem: wide_elem }, vec![e]),
        Layout::Deinterleaved => HvxExpr::op(Op::VdealPair { elem: wide_elem }, vec![e]),
    }
}

/// Assemble a pair from explicitly-computed halves (`vcombine`).
pub fn combine(hi: HvxExpr, lo: HvxExpr, stats: &mut SynthStats) -> HvxExpr {
    stats.swizzling_queries += 1;
    HvxExpr::op(Op::Vcombine, vec![hi, lo])
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::{Buffer2D, Env};

    fn env() -> Env {
        let mut env = Env::new();
        env.insert(Buffer2D::from_fn("in", ElemType::U8, 64, 2, |x, _| x as i64));
        env
    }

    #[test]
    fn aligned_window_is_plain_load() {
        let mut stats = SynthStats::default();
        let e = load_window("in", ElemType::U8, 8, 0, 8, true, &mut stats);
        assert!(matches!(e.root(), Op::Vmem { dx: 8, .. }));
        assert_eq!(stats.swizzling_queries, 1);
    }

    #[test]
    fn unaligned_window_synthesizes_valign() {
        let mut stats = SynthStats::default();
        let e = load_window("in", ElemType::U8, -1, 0, 8, true, &mut stats);
        assert!(matches!(e.root(), Op::Valign { bytes: 7 }));
        assert_eq!(stats.swizzling_queries, 2);
        // Semantics: the valign'd window equals the direct unaligned load.
        let env = env();
        let direct = HvxExpr::vmem("in", ElemType::U8, -1, 0).eval(&env, 16, 0, 8).unwrap();
        let synth = e.eval(&env, 16, 0, 8).unwrap();
        assert_eq!(direct, synth);
    }

    #[test]
    fn unaligned_mode_off_uses_direct_load() {
        let mut stats = SynthStats::default();
        let e = load_window("in", ElemType::U8, -1, 0, 8, false, &mut stats);
        assert!(matches!(e.root(), Op::Vmem { dx: -1, .. }));
    }

    #[test]
    fn layout_conversion_inserts_shuffle() {
        let mut stats = SynthStats::default();
        let wide = HvxExpr::op(
            Op::Vzxt { elem: ElemType::U8 },
            vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)],
        );
        let nat = to_layout(
            wide.clone(),
            Layout::Deinterleaved,
            Layout::Natural,
            ElemType::U16,
            &mut stats,
        );
        assert!(matches!(nat.root(), Op::VshuffPair { .. }));
        // Natural order after the shuffle matches the widened input.
        let env = env();
        let v = nat.eval(&env, 4, 0, 8).unwrap();
        let lanes = v.typed_lanes(ElemType::U16);
        assert_eq!(lanes.as_slice(), &[4, 5, 6, 7, 8, 9, 10, 11]);
        // Identity conversion is free.
        let same =
            to_layout(wide, Layout::Natural, Layout::Natural, ElemType::U16, &mut stats);
        assert!(matches!(same.root(), Op::Vzxt { .. }));
    }
}
