//! Randomized property tests over the lowering engine: randomly generated
//! uber-expressions must either lower to verified code or be declined —
//! never miscompiled — and the lowered code must beat or match a naive
//! reference implementation under the cost model.

use halide_ir::Load;
use hvx::CostModel;
use lanes::rng::Rng;
use lanes::ElemType;
use uber_ir::{UberExpr, VsMpyAdd};

use crate::lower::{lower_expr, LoweringOptions};
use crate::stats::SynthStats;
use crate::verify::Verifier;

const LANES: usize = 8;

fn verifier() -> Verifier {
    Verifier { smt_lowering: true, ..Verifier::fast() }
}

fn opts() -> LoweringOptions {
    LoweringOptions { lanes: LANES, vec_bytes: LANES, ..LoweringOptions::default() }
}

fn data(dx: i32, dy: i32) -> UberExpr {
    UberExpr::Data(Load { buffer: "in".into(), dx, dy, ty: ElemType::U8 })
}

/// Random small widening multiply-add over u8 loads.
fn small_vsmpy(rng: &mut Rng) -> UberExpr {
    let n = rng.gen_range_usize(1..=4);
    let column = rng.gen_bool(0.5);
    let terms: Vec<(i32, i32, i64)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(-2..=2) as i32,
                rng.gen_range(-1..=1) as i32,
                rng.gen_range(1..=7),
            )
        })
        .collect();
    let inputs = terms
        .iter()
        .map(|&(dx, dy, _)| if column { data(0, dx) } else { data(dx, dy) })
        .collect();
    let kernel = terms.iter().map(|&(_, _, w)| w).collect();
    UberExpr::VsMpyAdd(VsMpyAdd { inputs, kernel, saturating: false, out: ElemType::U16 })
}

// These drive full synthesis with symbolic-executor proofs; they run
// in release CI (`cargo test --release`) and are skipped under debug
// builds where the solver is an order of magnitude slower.

/// Every random multiply-add lowers, and the result re-verifies under
/// an independently seeded oracle (including the symbolic executor).
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy; run with --release")]
fn prop_random_vsmpy_lowers_verified() {
    let mut rng = Rng::seed_from_u64(0x10e1);
    for _ in 0..12 {
        let u = small_vsmpy(&mut rng);
        let v = verifier();
        let mut stats = SynthStats::default();
        let Some(h) = lower_expr(&u, &v, opts(), &mut stats) else {
            // Declining is allowed; miscompiling is not.
            continue;
        };
        // Independent re-verification with more random environments.
        let recheck = Verifier { random_envs: 12, ..verifier() };
        assert!(
            recheck.equiv_uber_hvx(&u, &h, false),
            "lowering failed independent re-verification:\n{u}\n{h}"
        );
    }
}

/// Lowered code never costs more than the naive per-term reference
/// (one widening multiply per term plus element-wise adds).
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy; run with --release")]
fn prop_lowering_beats_naive() {
    let mut rng = Rng::seed_from_u64(0xbea7);
    for _ in 0..12 {
        let u = small_vsmpy(&mut rng);
        let v = verifier();
        let mut stats = SynthStats::default();
        let Some(h) = lower_expr(&u, &v, opts(), &mut stats) else { continue };
        let UberExpr::VsMpyAdd(ref vs) = u else { unreachable!() };
        // Naive reference: vmpy per term + pair adds + final shuffle.
        let model = CostModel::new(LANES, LANES);
        let naive_units = 1 + 3 * vs.inputs.len() as u32; // loads + mpy + adds, loose bound
        let c = model.count(&h.to_program());
        assert!(
            c.total() <= naive_units + 2,
            "total units {} exceed naive bound {} for {u}",
            c.total(),
            naive_units
        );
    }
}

/// Narrow of a random multiply-add always produces one of the fused
/// narrowing instructions when the shift is non-zero.
#[test]
#[cfg_attr(debug_assertions, ignore = "heavy; run with --release")]
fn prop_narrow_fuses() {
    let mut rng = Rng::seed_from_u64(0xfa5e);
    for _ in 0..12 {
        let u = small_vsmpy(&mut rng);
        let shift = rng.gen_range(1..=5) as u32;
        let round = rng.gen_bool(0.5);
        let n = UberExpr::Narrow {
            arg: Box::new(u),
            shift,
            round,
            saturating: true,
            out: ElemType::U8,
        };
        let v = verifier();
        let mut stats = SynthStats::default();
        let Some(h) = lower_expr(&n, &v, opts(), &mut stats) else { continue };
        let listing = h.to_string();
        assert!(
            listing.contains("vasr-narrow"),
            "expected a fused narrowing shift in:\n{listing}"
        );
        // Fused consumption: no shuffle between the pair and the narrow.
        assert!(!listing.contains("vshuffvdd"), "unfused layout in:\n{listing}");
    }
}
