//! An exact linear-form decision procedure.
//!
//! Most lifting queries compare two *linear combinations* of input cells
//! (widening multiply-add chains against `vs-mpy-add` candidates). When
//! both sides are provably wrap-free — interval analysis over the cell
//! types shows no intermediate overflows — their semantics are exact
//! integer linear forms `Σ cᵢ·cellᵢ + k`, and equivalence reduces to
//! coefficient equality. This decides the big queries instantly and leaves
//! only genuinely non-linear ones (min/max/absd/saturation/shifts) to the
//! bit-blasting solver.

use std::collections::BTreeMap;

use halide_ir::{BinOp, Expr, ShiftDir};
use lanes::ElemType;
use uber_ir::{ScalarSource, UberExpr};

use crate::encode::{cell_var, scalar_var};

/// An exact integer linear form over named cells, plus its value interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinForm {
    /// Cell-variable name → coefficient.
    pub coeffs: BTreeMap<String, i128>,
    /// Constant term.
    pub constant: i128,
    lo: i128,
    hi: i128,
}

impl LinForm {
    fn constant_form(v: i128) -> LinForm {
        LinForm { coeffs: BTreeMap::new(), constant: v, lo: v, hi: v }
    }

    fn cell(name: String, ty: ElemType) -> LinForm {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name, 1);
        LinForm {
            coeffs,
            constant: 0,
            lo: ty.min_value() as i128,
            hi: ty.max_value() as i128,
        }
    }

    fn is_constant(&self) -> Option<i128> {
        if self.coeffs.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// `self + sign * other`, or `None` if the result might not fit `ty`.
    fn combine(&self, other: &LinForm, sign: i128, ty: ElemType) -> Option<LinForm> {
        let (olo, ohi) = if sign >= 0 { (other.lo, other.hi) } else { (-other.hi, -other.lo) };
        let mut out = LinForm {
            coeffs: self.coeffs.clone(),
            constant: self.constant + sign * other.constant,
            lo: self.lo + olo * sign.abs(),
            hi: self.hi + ohi * sign.abs(),
        };
        // sign is ±1 here, so scaling the interval is just the swap above.
        for (k, v) in &other.coeffs {
            *out.coeffs.entry(k.clone()).or_insert(0) += sign * v;
        }
        out.check_fits(ty)
    }

    /// `self * c`, or `None` on potential overflow of `ty`.
    fn scale(&self, c: i128, ty: ElemType) -> Option<LinForm> {
        let (a, b) = (self.lo * c, self.hi * c);
        let out = LinForm {
            coeffs: self.coeffs.iter().map(|(k, v)| (k.clone(), v * c)).collect(),
            constant: self.constant * c,
            lo: a.min(b),
            hi: a.max(b),
        };
        out.check_fits(ty)
    }

    fn check_fits(self, ty: ElemType) -> Option<LinForm> {
        if self.lo >= ty.min_value() as i128 && self.hi <= ty.max_value() as i128 {
            Some(self)
        } else {
            None
        }
    }

    /// Re-bound an exact value into a (wider or equal) type without
    /// changing the form — extension casts are the identity on canonical
    /// values.
    fn rebound(self, ty: ElemType) -> Option<LinForm> {
        self.check_fits(ty)
    }
}

/// Exact linear form of a Halide expression's lane 0, if wrap-free.
pub fn linear_halide(e: &Expr) -> Option<LinForm> {
    match e {
        Expr::Load(l) => {
            Some(LinForm::cell(cell_var(&l.buffer, i64::from(l.dx), l.dy), l.ty))
        }
        Expr::Broadcast(b) => Some(LinForm::constant_form(b.value as i128)),
        Expr::BroadcastLoad(b) => {
            Some(LinForm::cell(scalar_var(&b.buffer, b.x, b.dy), b.ty))
        }
        Expr::Cast(c) => linear_halide(&c.arg)?.rebound(c.to),
        Expr::Binary(b) => {
            let ty = e.ty();
            match b.op {
                BinOp::Add | BinOp::Sub => {
                    let (la, lb) = (linear_halide(&b.lhs)?, linear_halide(&b.rhs)?);
                    la.combine(&lb, if b.op == BinOp::Add { 1 } else { -1 }, ty)
                }
                BinOp::Mul => {
                    let (la, lb) = (linear_halide(&b.lhs)?, linear_halide(&b.rhs)?);
                    if let Some(c) = lb.is_constant() {
                        la.scale(c, ty)
                    } else if let Some(c) = la.is_constant() {
                        lb.scale(c, ty)
                    } else {
                        None
                    }
                }
                BinOp::Min | BinOp::Max | BinOp::Absd => None,
            }
        }
        Expr::Shift(s) => match s.dir {
            ShiftDir::Left => linear_halide(&s.arg)?.scale(1i128 << s.amount, e.ty()),
            ShiftDir::Right => None,
        },
    }
}

/// Exact linear form of an uber-expression's lane 0, if wrap-free.
pub fn linear_uber(u: &UberExpr) -> Option<LinForm> {
    match u {
        UberExpr::Data(l) => {
            Some(LinForm::cell(cell_var(&l.buffer, i64::from(l.dx), l.dy), l.ty))
        }
        UberExpr::Bcast { value, ty } => match value {
            ScalarSource::Imm(v) => Some(LinForm::constant_form(*v as i128)),
            ScalarSource::Scalar { buffer, x, dy } => {
                Some(LinForm::cell(scalar_var(buffer, *x, *dy), *ty))
            }
        },
        UberExpr::VsMpyAdd(v) => {
            let mut acc = LinForm::constant_form(0);
            for (input, &w) in v.inputs.iter().zip(&v.kernel) {
                let li = linear_uber(input)?;
                // Scale without an intermediate type bound; the final
                // accumulation is range-checked against the output type.
                let (a, b) = (li.lo * i128::from(w), li.hi * i128::from(w));
                let scaled = LinForm {
                    coeffs: li.coeffs.iter().map(|(k, c)| (k.clone(), c * i128::from(w))).collect(),
                    constant: li.constant * i128::from(w),
                    lo: a.min(b),
                    hi: a.max(b),
                };
                acc = LinForm {
                    constant: acc.constant + scaled.constant,
                    lo: acc.lo + scaled.lo,
                    hi: acc.hi + scaled.hi,
                    coeffs: {
                        let mut m = acc.coeffs;
                        for (k, c) in scaled.coeffs {
                            *m.entry(k).or_insert(0) += c;
                        }
                        m
                    },
                };
            }
            // Saturation is a no-op when the exact range fits the type.
            acc.check_fits(v.out)
        }
        UberExpr::VvMpyAdd(v) => {
            let mut acc = LinForm::constant_form(0);
            for (a, b) in &v.pairs {
                let (la, lb) = (linear_uber(a)?, linear_uber(b)?);
                let scaled = if let Some(c) = lb.is_constant() {
                    la.scale(c, v.out)?
                } else if let Some(c) = la.is_constant() {
                    lb.scale(c, v.out)?
                } else {
                    return None;
                };
                acc = acc.combine(&scaled, 1, v.out)?;
            }
            Some(acc)
        }
        UberExpr::Widen { arg, out } => linear_uber(arg)?.rebound(*out),
        UberExpr::Shl { arg, amount } => linear_uber(arg)?.scale(1i128 << amount, u.ty()),
        UberExpr::Narrow { arg, shift, saturating, out, .. } => {
            if *shift != 0 {
                return None;
            }
            let l = linear_uber(arg)?;
            // Both truncation and saturation are the identity when the
            // exact range already fits.
            let _ = saturating;
            l.rebound(*out)
        }
        UberExpr::AbsDiff(..)
        | UberExpr::Min(..)
        | UberExpr::Max(..)
        | UberExpr::Average { .. } => None,
    }
}

/// Decide equivalence of a Halide expression and an uber-expression by
/// exact linear forms. `Some(eq)` when both sides are wrap-free linear;
/// `None` when the query needs the solver.
pub fn decide_linear(h: &Expr, u: &UberExpr) -> Option<bool> {
    let (lh, lu) = (linear_halide(h)?, linear_uber(u)?);
    let mut eq = lh.constant == lu.constant;
    if eq {
        // Compare sparse maps, ignoring explicit zeros.
        let nz = |m: &BTreeMap<String, i128>| -> BTreeMap<String, i128> {
            m.iter().filter(|(_, &v)| v != 0).map(|(k, &v)| (k.clone(), v)).collect()
        };
        eq = nz(&lh.coeffs) == nz(&lu.coeffs);
    }
    Some(eq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halide_ir::builder as hb;
    use lanes::ElemType::{U16, U8};

    #[test]
    fn conv_row_is_linear_and_equal() {
        let t = |dx| hb::widen(hb::load("in", U8, dx, 0));
        let h = hb::add(hb::add(t(-1), hb::mul(t(0), hb::bcast(2, U16))), t(1));
        let u = UberExpr::conv("in", U8, -1, 0, &[1, 2, 1], U16);
        assert_eq!(decide_linear(&h, &u), Some(true));
        let wrong = UberExpr::conv("in", U8, -1, 0, &[1, 1, 2], U16);
        assert_eq!(decide_linear(&h, &wrong), Some(false));
    }

    #[test]
    fn overflowing_sum_is_not_linear() {
        // 255 * 255 exceeds u8: wrapping breaks exactness.
        let h = hb::mul(hb::load("in", U8, 0, 0), hb::bcast(255, U8));
        assert!(linear_halide(&h).is_none());
    }

    #[test]
    fn min_defeats_linearity() {
        let h = hb::min(hb::load("in", U8, 0, 0), hb::bcast(5, U8));
        assert!(linear_halide(&h).is_none());
        let u = UberExpr::Min(
            Box::new(UberExpr::conv("in", U8, 0, 0, &[1], U8)),
            Box::new(UberExpr::Bcast { value: ScalarSource::Imm(5), ty: U8 }),
        );
        assert!(linear_uber(&u).is_none());
    }

    #[test]
    fn big_gaussian_column_decides_instantly() {
        // 25-term weighted sum — the query shape that is hard for plain
        // CDCL but trivial as a linear form.
        let taps: [i64; 5] = [1, 4, 6, 4, 1];
        let row = |dy: i32| {
            let mut acc: Option<Expr> = None;
            for (k, &t) in taps.iter().enumerate() {
                let w = hb::widen(hb::load("in", U8, k as i32 - 2, dy));
                let term = if t == 1 { w } else { hb::mul(w, hb::bcast(t, U16)) };
                acc = Some(match acc {
                    None => term,
                    Some(a) => hb::add(a, term),
                });
            }
            acc.expect("taps")
        };
        let mut sum: Option<Expr> = None;
        for (k, &t) in taps.iter().enumerate() {
            let r = row(k as i32 - 2);
            let term = if t == 1 { r } else { hb::mul(r, hb::bcast(t, U16)) };
            sum = Some(match sum {
                None => term,
                Some(a) => hb::add(a, term),
            });
        }
        let h = sum.expect("rows");
        // Matching uber form: 25 loads with the outer-product kernel.
        let mut inputs = Vec::new();
        let mut kernel = Vec::new();
        for (j, &tj) in taps.iter().enumerate() {
            for (i, &ti) in taps.iter().enumerate() {
                inputs.push(UberExpr::Data(halide_ir::Load {
                    buffer: "in".into(),
                    dx: i as i32 - 2,
                    dy: j as i32 - 2,
                    ty: U8,
                }));
                kernel.push(ti * tj);
            }
        }
        let u = UberExpr::VsMpyAdd(uber_ir::VsMpyAdd {
            inputs,
            kernel,
            saturating: false,
            out: U16,
        });
        assert_eq!(decide_linear(&h, &u), Some(true));
    }

    #[test]
    fn runtime_scalars_are_cells() {
        let h = hb::mul(
            hb::widen(hb::load("x", U8, 0, 0)),
            hb::widen(hb::bcast_load("w", 1, 0, U8)),
        );
        assert!(linear_halide(&h).is_none(), "product of two cells is non-linear");
    }
}
