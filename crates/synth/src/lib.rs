//! Rake's synthesis engine (§3–§5 of the paper).
//!
//! Instruction selection is decomposed into three synthesis stages, each a
//! search over candidates discharged by an equivalence oracle:
//!
//! 1. **Lifting** ([`lift`]) — Algorithm 1: bottom-up enumerative synthesis
//!    from Halide IR into the Uber-Instruction IR via `update` / `replace` /
//!    `extend` candidate rules, greedily folding each Halide operation into
//!    the existing uber-expression.
//! 2. **Swizzle-free sketch synthesis** ([`lower`]) — Algorithm 2: for each
//!    uber-instruction, enumerate concrete HVX compute templates in
//!    increasing cost under a tightening upper bound β, abstracting data
//!    movement (`??load` / `??swizzle`).
//! 3. **Swizzle synthesis** ([`swizzle`]) — concretize the data-movement
//!    holes with real loads and permutes (`vmem`, `valign`, `vcombine`,
//!    `vshuffvdd`, ...) under the remaining cost budget, including the
//!    interleaved/deinterleaved intermediate-layout choice of §5.1.
//!
//! The equivalence oracle ([`verify`]) combines lane-0-first differential
//! testing (the paper's §4.1 incremental pruning), full-lane adversarial +
//! randomized testing at two vector widths, and — for lifting queries —
//! bit-vector SMT proofs over a symbolic tile window (the reproduction's
//! stand-in for Rosette/Z3; see DESIGN.md).

pub mod cancel;
pub mod coverage;
pub mod encode;
pub mod envs;
pub mod lift;
pub mod linear;
pub mod lower;
#[cfg(test)]
mod lower_proptests;
pub mod pool;
pub mod range;
pub mod stats;
pub mod swizzle;
pub mod swizzle_search;
pub mod symexec;
pub mod verify;

pub use cancel::CancelFlag;
pub use lift::{
    lift_expr, lift_expr_budgeted, lift_expr_cancellable, lift_expr_with_deadline, LiftRule,
    LiftStep, LiftTrace,
};
pub use lower::{lower_expr, Layout, Lowered, LoweringOptions};
pub use stats::SynthStats;
pub use verify::{MemoHandle, MemoSnapshot, Verifier};
