//! A symbolic executor for HVX expressions: the "interpreter for the
//! target ISA" that the paper gives its SMT engine (§2.2.1), here over the
//! bundled bit-vector solver.
//!
//! Registers are vectors of 8-bit terms (bytes), exactly like the concrete
//! executor's byte-level registers, so reinterpretation effects —
//! deinterleaved pairs, `vaslw` on halfword data, saturating packs — are
//! modeled bit-precisely. Combined with [`crate::encode::encode_uber_lane`]
//! this yields solver-checked lowering verification
//! ([`Verifier`](crate::Verifier) option `smt_lowering`).

use lanes::ElemType;
use smt::{Context, TermId};

use crate::encode::{cell_var, scalar_var};
use hvx::{HvxExpr, Op, ScalarOperand};

/// A symbolic register: little-endian bytes, each an 8-bit term.
#[derive(Debug, Clone)]
pub struct SymReg {
    bytes: Vec<TermId>,
}

/// A symbolic value: register or pair.
#[derive(Debug, Clone)]
pub enum SymValue {
    /// One register.
    Vec(SymReg),
    /// A register pair `(lo, hi)`.
    Pair(SymReg, SymReg),
}

/// Why symbolic execution declined an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Unsupported(pub String);

type Sym<T> = Result<T, Unsupported>;

fn unsupported<T>(what: impl Into<String>) -> Sym<T> {
    Err(Unsupported(what.into()))
}

impl SymReg {
    fn lanes(&self, ctx: &mut Context, elem: ElemType) -> Vec<TermId> {
        self.bytes
            .chunks(elem.bytes())
            .map(|chunk| {
                let mut t = chunk[0];
                for &b in &chunk[1..] {
                    t = ctx.concat(b, t); // later bytes are more significant
                }
                t
            })
            .collect()
    }

    fn from_lanes(ctx: &mut Context, lanes: &[TermId], elem: ElemType) -> SymReg {
        let mut bytes = Vec::with_capacity(lanes.len() * elem.bytes());
        for &lane in lanes {
            for k in 0..elem.bytes() as u32 {
                bytes.push(ctx.extract(lane, k * 8 + 7, k * 8));
            }
        }
        SymReg { bytes }
    }

    fn len(&self) -> usize {
        self.bytes.len()
    }
}

impl SymValue {
    fn as_vec(&self) -> Sym<&SymReg> {
        match self {
            SymValue::Vec(r) => Ok(r),
            SymValue::Pair(..) => unsupported("expected a single register"),
        }
    }

    fn as_pair(&self) -> Sym<(&SymReg, &SymReg)> {
        match self {
            SymValue::Vec(_) => unsupported("expected a pair"),
            SymValue::Pair(lo, hi) => Ok((lo, hi)),
        }
    }

    /// Natural-order lanes (`lo` then `hi` for a pair).
    pub fn natural_lanes(&self, ctx: &mut Context, elem: ElemType) -> Vec<TermId> {
        match self {
            SymValue::Vec(r) => r.lanes(ctx, elem),
            SymValue::Pair(lo, hi) => {
                let mut l = lo.lanes(ctx, elem);
                l.extend(hi.lanes(ctx, elem));
                l
            }
        }
    }
}

/// The symbolic execution context: lane count (kept small — the symbolic
/// tile) and the term context.
pub struct SymExec<'c> {
    /// Term-building context.
    pub ctx: &'c mut Context,
    /// Lanes of the symbolic tile.
    pub lanes: usize,
    /// Register width in bytes: sources wider than this split into
    /// natural-order pairs, as in the concrete executor.
    pub vec_bytes: usize,
}

impl SymExec<'_> {
    fn widen_lane(&mut self, t: TermId, signed: bool, extra: u32) -> TermId {
        if signed {
            self.ctx.sign_ext(t, extra)
        } else {
            self.ctx.zero_ext(t, extra)
        }
    }

    /// A multiply scalar as a term of width `2 * elem.bits()`. Runtime
    /// scalars are element-wide solver variables (the same name and width
    /// the uber encoder uses), extended by the element's signedness.
    fn scalar(&mut self, s: &ScalarOperand, elem: ElemType) -> Sym<TermId> {
        let width = elem.bits() * 2;
        match s {
            ScalarOperand::Imm(v) => Ok(self.ctx.constant_signed(*v, width)),
            ScalarOperand::Load { buffer, x, dy } => {
                let narrow = self.ctx.var(&scalar_var(buffer, *x, *dy), elem.bits());
                Ok(ext(self.ctx, narrow, elem.is_signed(), elem.bits()))
            }
        }
    }

    /// Wrap source lanes into a value, splitting into a natural-order pair
    /// when wider than one register.
    fn source_value(&mut self, lanes: &[TermId], elem: ElemType) -> SymValue {
        if lanes.len() * elem.bytes() <= self.vec_bytes {
            SymValue::Vec(SymReg::from_lanes(self.ctx, lanes, elem))
        } else {
            let half = lanes.len() / 2;
            SymValue::Pair(
                SymReg::from_lanes(self.ctx, &lanes[..half], elem),
                SymReg::from_lanes(self.ctx, &lanes[half..], elem),
            )
        }
    }

    /// Deinterleave natural-order wide lanes into a pair.
    fn deinterleave(&mut self, wide: &[TermId], elem: ElemType) -> SymValue {
        let evens: Vec<TermId> = wide.iter().copied().step_by(2).collect();
        let odds: Vec<TermId> = wide.iter().copied().skip(1).step_by(2).collect();
        SymValue::Pair(
            SymReg::from_lanes(self.ctx, &evens, elem),
            SymReg::from_lanes(self.ctx, &odds, elem),
        )
    }

    fn elementwise2(
        &mut self,
        a: &SymValue,
        b: &SymValue,
        elem: ElemType,
        f: &mut dyn FnMut(&mut Context, TermId, TermId) -> TermId,
    ) -> Sym<SymValue> {
        let mut go = |sx: &mut SymExec<'_>, ra: &SymReg, rb: &SymReg| -> Sym<SymReg> {
            if ra.len() != rb.len() {
                return unsupported("length mismatch");
            }
            let (la, lb) = (ra.lanes(sx.ctx, elem), rb.lanes(sx.ctx, elem));
            let out: Vec<TermId> =
                la.iter().zip(&lb).map(|(&x, &y)| f(sx.ctx, x, y)).collect();
            Ok(SymReg::from_lanes(sx.ctx, &out, elem))
        };
        match (a, b) {
            (SymValue::Vec(ra), SymValue::Vec(rb)) => Ok(SymValue::Vec(go(self, ra, rb)?)),
            (SymValue::Pair(al, ah), SymValue::Pair(bl, bh)) => {
                Ok(SymValue::Pair(go(self, al, bl)?, go(self, ah, bh)?))
            }
            _ => unsupported("mixed shapes"),
        }
    }

    /// Symbolically execute an HVX expression over the shared cell
    /// variables.
    pub fn eval(&mut self, e: &HvxExpr) -> Sym<SymValue> {
        let args: Vec<SymValue> =
            e.args().iter().map(|a| self.eval(a)).collect::<Sym<Vec<_>>>()?;
        self.eval_op(e.root(), &args)
    }

    #[allow(clippy::too_many_lines)]
    fn eval_op(&mut self, op: &Op, args: &[SymValue]) -> Sym<SymValue> {
        match op {
            Op::Vmem { buffer, dx, dy, elem } => {
                let lanes: Vec<TermId> = (0..self.lanes)
                    .map(|i| {
                        self.ctx.var(
                            &cell_var(buffer, i64::from(*dx) + i as i64, *dy),
                            elem.bits(),
                        )
                    })
                    .collect();
                Ok(self.source_value(&lanes, *elem))
            }
            Op::Vsplat { value, elem } => {
                let s = match value {
                    ScalarOperand::Imm(v) => self.ctx.constant_signed(*v, elem.bits()),
                    ScalarOperand::Load { buffer, x, dy } => {
                        self.ctx.var(&scalar_var(buffer, *x, *dy), elem.bits())
                    }
                };
                let lanes = vec![s; self.lanes];
                Ok(self.source_value(&lanes, *elem))
            }
            Op::Vadd { elem, sat } | Op::Vsub { elem, sat } => {
                let is_add = matches!(op, Op::Vadd { .. });
                let (e, s, signed) = (*elem, *sat, elem.is_signed());
                self.elementwise2(&args[0], &args[1], e, &mut |ctx, x, y| {
                    if !s {
                        if is_add {
                            ctx.add(x, y)
                        } else {
                            ctx.sub(x, y)
                        }
                    } else {
                        // Saturate at 2-bit headroom.
                        let wx = ext(ctx, x, signed, 2);
                        let wy = ext(ctx, y, signed, 2);
                        let sum = if is_add { ctx.add(wx, wy) } else { ctx.sub(wx, wy) };
                        let clamped = ctx.sclamp(sum, e.min_value(), e.max_value());
                        ctx.extract(clamped, e.bits() - 1, 0)
                    }
                })
            }
            Op::Vavg { elem, round } => {
                let (e, r, signed) = (*elem, *round, elem.is_signed());
                self.elementwise2(&args[0], &args[1], e, &mut |ctx, x, y| {
                    let wx = ext(ctx, x, signed, 2);
                    let wy = ext(ctx, y, signed, 2);
                    let mut sum = ctx.add(wx, wy);
                    if r {
                        let one = ctx.constant(1, e.bits() + 2);
                        sum = ctx.add(sum, one);
                    }
                    let sh = ctx.ashr(sum, 1);
                    ctx.extract(sh, e.bits() - 1, 0)
                })
            }
            Op::Vabsdiff { elem } => {
                let signed = elem.is_signed();
                self.elementwise2(&args[0], &args[1], *elem, &mut |ctx, x, y| {
                    let lt = if signed { ctx.slt(x, y) } else { ctx.ult(x, y) };
                    let d1 = ctx.sub(x, y);
                    let d2 = ctx.sub(y, x);
                    ctx.ite(lt, d2, d1)
                })
            }
            Op::Vmax { elem } | Op::Vmin { elem } => {
                let is_max = matches!(op, Op::Vmax { .. });
                let signed = elem.is_signed();
                self.elementwise2(&args[0], &args[1], *elem, &mut |ctx, x, y| {
                    match (is_max, signed) {
                        (true, true) => ctx.smax(x, y),
                        (true, false) => ctx.umax(x, y),
                        (false, true) => ctx.smin(x, y),
                        (false, false) => ctx.umin(x, y),
                    }
                })
            }
            Op::Vasl { elem, shift } => {
                let sh = *shift;
                self.elementwise2(&args[0], &args[0].clone(), *elem, &mut |ctx, x, _| {
                    ctx.shl(x, sh)
                })
            }
            Op::Vasr { elem, shift } | Op::Vlsr { elem, shift } => {
                let arith = matches!(op, Op::Vasr { .. }) && elem.is_signed();
                let sh = *shift;
                self.elementwise2(&args[0], &args[0].clone(), *elem, &mut |ctx, x, _| {
                    if arith {
                        ctx.ashr(x, sh)
                    } else {
                        ctx.lshr(x, sh)
                    }
                })
            }
            Op::VasrNarrow { elem, shift, round, sat, out } => {
                let (a, b) = (args[0].as_vec()?.clone(), args[1].as_vec()?.clone());
                let (la, lb) = (a.lanes(self.ctx, *elem), b.lanes(self.ctx, *elem));
                let signed = elem.is_signed();
                let mut outl = Vec::with_capacity(la.len() * 2);
                for i in 0..la.len() {
                    for src in [lb[i], la[i]] {
                        // even lane from b, odd from a
                        let t = narrow_term(self.ctx, src, signed, *shift, *round, *sat, *out);
                        outl.push(t);
                    }
                }
                Ok(SymValue::Vec(SymReg::from_lanes(self.ctx, &outl, *out)))
            }
            Op::Vpack { elem, sat, out } => {
                let (a, b) = (args[0].as_vec()?.clone(), args[1].as_vec()?.clone());
                let (la, lb) = (a.lanes(self.ctx, *elem), b.lanes(self.ctx, *elem));
                let signed = elem.is_signed();
                let mut outl = Vec::with_capacity(la.len() * 2);
                for i in 0..la.len() {
                    for src in [lb[i], la[i]] {
                        let t = narrow_term(self.ctx, src, signed, 0, false, *sat, *out);
                        outl.push(t);
                    }
                }
                Ok(SymValue::Vec(SymReg::from_lanes(self.ctx, &outl, *out)))
            }
            Op::Vmpy { elem } => {
                let (a, b) = (args[0].as_vec()?.clone(), args[1].as_vec()?.clone());
                let wide = self.widening_mul(&a, Some(&b), None, *elem)?;
                Ok(self.deinterleave(&wide, elem.widened().expect("widened")))
            }
            Op::VmpyScalar { elem, scalar } => {
                let a = args[0].as_vec()?.clone();
                let s = self.scalar(scalar, *elem)?;
                let wide = self.widening_mul(&a, None, Some(s), *elem)?;
                Ok(self.deinterleave(&wide, elem.widened().expect("widened")))
            }
            Op::VmpyAcc { elem, scalar } => {
                let x = args[1].as_vec()?.clone();
                let s = self.scalar(scalar, *elem)?;
                let wide = self.widening_mul(&x, None, Some(s), *elem)?;
                self.acc_pair(&args[0], &wide, elem.widened().expect("widened"))
            }
            Op::Vmpa { elem, w0, w1 } | Op::VmpaAcc { elem, w0, w1 } => {
                let accumulating = matches!(op, Op::VmpaAcc { .. });
                let off = usize::from(accumulating);
                let (a, b) = (args[off].as_vec()?.clone(), args[off + 1].as_vec()?.clone());
                let wide_ty = elem.widened().expect("widened");
                let signed = elem.is_signed();
                let (la, lb) = (a.lanes(self.ctx, *elem), b.lanes(self.ctx, *elem));
                let wide: Vec<TermId> = la
                    .iter()
                    .zip(&lb)
                    .map(|(&x, &y)| {
                        let wx = ext(self.ctx, x, signed, elem.bits());
                        let wy = ext(self.ctx, y, signed, elem.bits());
                        let c0 = self.ctx.constant_signed(*w0, wide_ty.bits());
                        let c1 = self.ctx.constant_signed(*w1, wide_ty.bits());
                        let p0 = self.ctx.mul(wx, c0);
                        let p1 = self.ctx.mul(wy, c1);
                        self.ctx.add(p0, p1)
                    })
                    .collect();
                if accumulating {
                    self.acc_pair(&args[0], &wide, wide_ty)
                } else {
                    Ok(self.deinterleave(&wide, wide_ty))
                }
            }
            Op::Vzxt { elem } | Op::Vsxt { elem } => {
                let signed = matches!(op, Op::Vsxt { .. });
                let src = if signed { elem.as_signed() } else { elem.as_unsigned() };
                let a = args[0].as_vec()?.clone();
                let la = a.lanes(self.ctx, src);
                let wide: Vec<TermId> =
                    la.iter().map(|&t| self.widen_lane(t, signed, src.bits())).collect();
                Ok(self.deinterleave(&wide, src.widened().expect("widened")))
            }
            Op::Vcombine => {
                let (hi, lo) = (args[0].as_vec()?.clone(), args[1].as_vec()?.clone());
                Ok(SymValue::Pair(lo, hi))
            }
            Op::Lo => Ok(SymValue::Vec(args[0].as_pair()?.0.clone())),
            Op::Hi => Ok(SymValue::Vec(args[0].as_pair()?.1.clone())),
            Op::VshuffPair { elem } => {
                let (lo, hi) = args[0].as_pair()?;
                let (lo, hi) = (lo.clone(), hi.clone());
                let (ll, lh) = (lo.lanes(self.ctx, *elem), hi.lanes(self.ctx, *elem));
                let mut stream = Vec::with_capacity(ll.len() * 2);
                for i in 0..ll.len() {
                    stream.push(ll[i]);
                    stream.push(lh[i]);
                }
                let n = ll.len();
                Ok(SymValue::Pair(
                    SymReg::from_lanes(self.ctx, &stream[..n], *elem),
                    SymReg::from_lanes(self.ctx, &stream[n..], *elem),
                ))
            }
            Op::VdealPair { elem } => {
                let (lo, hi) = args[0].as_pair()?;
                let (lo, hi) = (lo.clone(), hi.clone());
                let mut nat = lo.lanes(self.ctx, *elem);
                nat.extend(hi.lanes(self.ctx, *elem));
                Ok(self.deinterleave(&nat, *elem))
            }
            Op::Valign { bytes } => {
                let (a, b) = (args[0].as_vec()?, args[1].as_vec()?);
                let n = *bytes as usize;
                if n > a.len() || a.len() != b.len() {
                    return unsupported("valign out of range");
                }
                let concat: Vec<TermId> =
                    b.bytes.iter().chain(&a.bytes).copied().collect();
                Ok(SymValue::Vec(SymReg { bytes: concat[n..n + a.len()].to_vec() }))
            }
            Op::Vror { bytes } => {
                let a = args[0].as_vec()?;
                let n = *bytes as usize % a.len();
                let mut out = a.bytes[n..].to_vec();
                out.extend_from_slice(&a.bytes[..n]);
                Ok(SymValue::Vec(SymReg { bytes: out }))
            }
            other => unsupported(format!("symbolic execution of `{other}`")),
        }
    }

    /// Products widened to 2× the element width, natural order.
    fn widening_mul(
        &mut self,
        a: &SymReg,
        b: Option<&SymReg>,
        scalar: Option<TermId>,
        elem: ElemType,
    ) -> Sym<Vec<TermId>> {
        let signed = elem.is_signed();
        let la = a.lanes(self.ctx, elem);
        let lb = match b {
            Some(b) => b.lanes(self.ctx, elem).iter().map(|&t| ext(self.ctx, t, signed, elem.bits())).collect(),
            None => vec![scalar.expect("scalar operand"); la.len()],
        };
        Ok(la
            .iter()
            .zip(&lb)
            .map(|(&x, &y)| {
                let wx = ext(self.ctx, x, signed, elem.bits());
                self.ctx.mul(wx, y)
            })
            .collect())
    }

    /// `acc + deinterleave(wide)` lane-wise.
    fn acc_pair(&mut self, acc: &SymValue, wide: &[TermId], wide_ty: ElemType) -> Sym<SymValue> {
        let (alo, ahi) = acc.as_pair()?;
        let (alo, ahi) = (alo.clone(), ahi.clone());
        let (llo, lhi) = (alo.lanes(self.ctx, wide_ty), ahi.lanes(self.ctx, wide_ty));
        let evens: Vec<TermId> = wide.iter().copied().step_by(2).collect();
        let odds: Vec<TermId> = wide.iter().copied().skip(1).step_by(2).collect();
        if evens.len() != llo.len() || odds.len() != lhi.len() {
            return unsupported("accumulator length mismatch");
        }
        let lo: Vec<TermId> =
            llo.iter().zip(&evens).map(|(&x, &y)| self.ctx.add(x, y)).collect();
        let hi: Vec<TermId> =
            lhi.iter().zip(&odds).map(|(&x, &y)| self.ctx.add(x, y)).collect();
        Ok(SymValue::Pair(
            SymReg::from_lanes(self.ctx, &lo, wide_ty),
            SymReg::from_lanes(self.ctx, &hi, wide_ty),
        ))
    }
}

/// Solver-checked equivalence of an uber-expression and a lowered HVX
/// expression over a symbolic tile of `lanes` lanes (which must be the
/// width the HVX expression was lowered for — sliding-window operands
/// embed it).
///
/// Returns `Some(equivalent)` when the proof ran to completion, `None`
/// when the expression uses an op outside the symbolic executor's support
/// or the conflict budget was exhausted.
pub fn smt_equiv_uber_hvx(
    u: &uber_ir::UberExpr,
    h: &HvxExpr,
    lanes: usize,
    vec_bytes: usize,
    deinterleaved: bool,
    conflict_budget: u64,
    solver: &smt::SharedSolver,
) -> Option<bool> {
    use smt::{BvSolver, SmtResult};
    solver.run(|ctx| {
        let uber_lanes: Vec<TermId> =
            (0..lanes).map(|i| crate::encode::encode_uber_lane(ctx, u, i)).collect();
        let mut sx = SymExec { ctx: &mut *ctx, lanes, vec_bytes };
        let val = sx.eval(h).ok()?;
        let got = val.natural_lanes(&mut *ctx, u.ty());
        if got.len() != uber_lanes.len() {
            return Some(false);
        }
        let mut any_ne = ctx.ff();
        for (i, &g) in got.iter().enumerate() {
            let want_idx = if deinterleaved {
                let n = got.len();
                if i < n / 2 {
                    2 * i
                } else {
                    2 * (i - n / 2) + 1
                }
            } else {
                i
            };
            let ne = ctx.ne(g, uber_lanes[want_idx]);
            any_ne = ctx.or(any_ne, ne);
        }
        let mut solver = BvSolver::new(ctx);
        solver.assert_term(any_ne);
        solver.check_limited(conflict_budget).map(|r| r == SmtResult::Unsat)
    })
}

fn ext(ctx: &mut Context, t: TermId, signed: bool, extra: u32) -> TermId {
    if signed {
        ctx.sign_ext(t, extra)
    } else {
        ctx.zero_ext(t, extra)
    }
}

/// Rounding/saturating narrow of one lane (the shared `vasr`/`vpack`
/// semantics, mirroring `lanes::asr_rnd` wrap-rounding).
fn narrow_term(
    ctx: &mut Context,
    t: TermId,
    signed: bool,
    shift: u32,
    round: bool,
    sat: bool,
    out: ElemType,
) -> TermId {
    let w = ctx.width(t);
    let mut v = t;
    if round && shift > 0 {
        let r = ctx.constant(1u64 << (shift - 1), w);
        v = ctx.add(v, r); // wraps at the source width, like the hardware
    }
    let shifted = if shift == 0 {
        v
    } else if signed {
        ctx.ashr(v, shift)
    } else {
        ctx.lshr(v, shift)
    };
    if sat {
        let clamped = if signed {
            ctx.sclamp(shifted, out.min_value(), out.max_value())
        } else {
            let hi = ctx.constant(out.max_value() as u64, w);
            ctx.umin(shifted, hi)
        };
        ctx.extract(clamped, out.bits() - 1, 0)
    } else {
        ctx.extract(shifted, out.bits() - 1, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uber_ir::UberExpr;

    /// Solver-checked equivalence over a tiny symbolic tile.
    fn smt_equiv(u: &UberExpr, h: &HvxExpr, lanes: usize, deint: bool) -> bool {
        let solver = smt::SharedSolver::new();
        smt_equiv_uber_hvx(u, h, lanes, lanes, deint, u64::MAX, &solver).unwrap_or(false)
    }

    #[test]
    fn proves_vtmpy_free_conv_via_vmpa() {
        // vmpa(a, b, 2, 1) implements in(x)*2 + in(x+1) deinterleaved.
        let u = UberExpr::conv("in", ElemType::U8, 0, 0, &[2, 1], ElemType::U16);
        let h = HvxExpr::op(
            Op::Vmpa { elem: ElemType::U8, w0: 2, w1: 1 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vmem("in", ElemType::U8, 1, 0),
            ],
        );
        assert!(smt_equiv(&u, &h, 4, true));
        // Wrong weights refuted.
        let bad = HvxExpr::op(
            Op::Vmpa { elem: ElemType::U8, w0: 1, w1: 2 },
            vec![
                HvxExpr::vmem("in", ElemType::U8, 0, 0),
                HvxExpr::vmem("in", ElemType::U8, 1, 0),
            ],
        );
        assert!(!smt_equiv(&u, &bad, 4, true));
    }

    #[test]
    fn proves_widen_shuffle_natural_order() {
        let u = UberExpr::Widen {
            arg: Box::new(UberExpr::Data(halide_ir::Load {
                buffer: "in".into(),
                dx: 0,
                dy: 0,
                ty: ElemType::U8,
            })),
            out: ElemType::U16,
        };
        let zxt = HvxExpr::op(
            Op::Vzxt { elem: ElemType::U8 },
            vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)],
        );
        // Deinterleaved: the raw vzxt. Natural: needs the shuffle.
        assert!(smt_equiv(&u, &zxt, 4, true));
        assert!(!smt_equiv(&u, &zxt, 4, false));
        let shuffled =
            HvxExpr::op(Op::VshuffPair { elem: ElemType::U16 }, vec![zxt]);
        assert!(smt_equiv(&u, &shuffled, 4, false));
    }

    #[test]
    fn proves_fused_narrow() {
        // narrow:rnd:sat of a widened value == vasr-narrow of the vzxt pair.
        let data = UberExpr::Data(halide_ir::Load {
            buffer: "in".into(),
            dx: 0,
            dy: 0,
            ty: ElemType::U8,
        });
        let u = UberExpr::Narrow {
            arg: Box::new(UberExpr::VsMpyAdd(uber_ir::VsMpyAdd {
                inputs: vec![data],
                kernel: vec![3],
                saturating: false,
                out: ElemType::U16,
            })),
            shift: 2,
            round: true,
            saturating: true,
            out: ElemType::U8,
        };
        let wide = HvxExpr::op(
            Op::VmpyScalar { elem: ElemType::U8, scalar: ScalarOperand::Imm(3) },
            vec![HvxExpr::vmem("in", ElemType::U8, 0, 0)],
        );
        let h = HvxExpr::op(
            Op::VasrNarrow {
                elem: ElemType::U16,
                shift: 2,
                round: true,
                sat: true,
                out: ElemType::U8,
            },
            vec![
                HvxExpr::op(Op::Hi, vec![wide.clone()]),
                HvxExpr::op(Op::Lo, vec![wide]),
            ],
        );
        assert!(smt_equiv(&u, &h, 4, false));
    }

    #[test]
    fn refutes_missing_saturation() {
        // A saturating uber-narrow against a truncating pack: refuted.
        let data = UberExpr::Data(halide_ir::Load {
            buffer: "in".into(),
            dx: 0,
            dy: 0,
            ty: ElemType::I16,
        });
        let u = UberExpr::Narrow {
            arg: Box::new(data),
            shift: 0,
            round: false,
            saturating: true,
            out: ElemType::U8,
        };
        let load = HvxExpr::vmem("in", ElemType::I16, 0, 0);
        let dealt = HvxExpr::op(Op::VdealPair { elem: ElemType::I16 }, vec![load]);
        let mk = |sat| {
            HvxExpr::op(
                Op::Vpack { elem: ElemType::I16, sat, out: ElemType::U8 },
                vec![
                    HvxExpr::op(Op::Hi, vec![dealt.clone()]),
                    HvxExpr::op(Op::Lo, vec![dealt.clone()]),
                ],
            )
        };
        assert!(smt_equiv(&u, &mk(true), 4, false));
        assert!(!smt_equiv(&u, &mk(false), 4, false));
    }
}
